"""The MAXSS → MAXGSAT approximation-factor-preserving reduction (Section IV).

The reduction builds, from a set Σ of eCFDs over schema R, a MAXGSAT
instance ``f(Σ)`` together with a decoding function ``g`` such that

1. ``f`` and ``g`` are PTIME;
2. ``card(OPT_maxgsat(f(Σ))) = card(OPT_maxss(Σ))``;
3. for any truth assignment ``p`` with satisfied-formula set ``Φ_m``,
   ``card(g(Φ_m)) ≥ card(Φ_m)`` and ``g(Φ_m)`` is a satisfiable subset of Σ.

Construction (following the paper, with the single practical deviation that
only the attributes actually mentioned by Σ get variables — unmentioned
attributes contribute a single fresh value and only constant-true
conjuncts, so dropping them changes nothing):

* For every mentioned attribute ``A_i`` the active domain ``adom(A_i)`` is
  the set of constants mentioned for ``A_i`` plus one extra domain value
  (when one exists).  For each ``a ∈ adom(A_i)`` there is a Boolean
  variable ``x(i, a)`` meaning "the template tuple t has t[A_i] = a".
* ``φ_i`` asserts that exactly one of the ``x(i, ·)`` holds:
  ``∨_a x(i,a)  ∧  ∧_{a≠b} (x(i,a) → ¬x(i,b))``; ``Φ_R`` is the conjunction
  of all ``φ_i``.
* For an eCFD ``φ`` with pattern tuple ``tp``::

      ψ(φ, tp) =  ∨_{B ∈ X} [t[B] ⋬ tp[B]]  ∨  ∧_{A ∈ Y ∪ Yp} [t[A] ≍ tp[A]]

  where ``[t[B] ≍ S]`` is the disjunction of ``x(B, a)`` over ``a ∈ S``,
  ``[t[B] ≍ S̄]`` is the conjunction of ``¬x(B, a)`` over ``a ∈ S`` and the
  wildcard encodes ``true`` (non-match is the dual).
* The MAXGSAT instance has one formula per member of Σ:
  ``Ψ(φ) = Φ_R ∧ ∧_{tp ∈ Tp} ψ(φ, tp)`` — for single-pattern eCFDs this is
  exactly the paper's ``ψ(φ, tp) ∧ Φ_R``; for multi-pattern eCFDs the
  conjunction keeps the one-formula-per-constraint correspondence that
  MAXSS needs.

``g`` reads the template tuple back from a truth assignment (picking, for
each attribute, the value whose variable is true) and returns the subset of
Σ satisfied by that single-tuple database.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Mapping, Sequence

from repro.analysis.active_domain import active_domains, mentioned_attributes
from repro.core.ecfd import ECFD, ECFDSet
from repro.core.patterns import ComplementSet, PatternValue, ValueSet, Wildcard
from repro.core.schema import RelationSchema, Value
from repro.exceptions import ConstraintError
from repro.sat.expr import FALSE, TRUE, Expression, Not, Var, conjoin, disjoin
from repro.sat.maxgsat import MaxGSATInstance

__all__ = ["ReductionResult", "reduce_to_maxgsat", "variable_name"]


def variable_name(attribute: str, value: Value) -> str:
    """The name of the Boolean variable ``x(i, a)`` for ``t[attribute] = value``."""
    return f"x[{attribute}={value!r}]"


@dataclass(frozen=True)
class ReductionResult:
    """The output of ``f`` plus everything needed to compute ``g``.

    Attributes
    ----------
    instance:
        The MAXGSAT instance ``f(Σ)``; formula ``i`` corresponds to the
        ``i``-th eCFD of ``constraints``.
    constraints:
        The input Σ, in order.
    domains:
        Active domain per mentioned attribute.
    schema:
        The common relation schema.
    """

    instance: MaxGSATInstance
    constraints: tuple[ECFD, ...]
    domains: dict[str, list[Value]]
    schema: RelationSchema

    # ------------------------------------------------------------------
    # Decoding (the function g of the paper)
    # ------------------------------------------------------------------
    def decode_tuple(self, assignment: Mapping[str, bool]) -> dict[str, Value]:
        """Instantiate the template tuple from a truth assignment.

        For each mentioned attribute the value whose variable is true is
        chosen (the first one in deterministic order if the assignment
        violates the uniqueness formulas); attributes with no true variable,
        and unmentioned attributes, get a fresh domain value.
        """
        witness: dict[str, Value] = {}
        for attribute, candidates in self.domains.items():
            chosen: Value | None = None
            for value in candidates:
                if assignment.get(variable_name(attribute, value), False):
                    chosen = value
                    break
            if chosen is None:
                fresh = self.schema.domain(attribute).fresh_value(exclude=candidates)
                chosen = fresh if fresh is not None else candidates[0]
            witness[attribute] = chosen
        for attribute in self.schema.attribute_names:
            if attribute not in witness:
                fresh = self.schema.domain(attribute).fresh_value()
                witness[attribute] = fresh if fresh is not None else "_"
        return witness

    def decode_satisfied(self, assignment: Mapping[str, bool]) -> list[int]:
        """``g(Φ_m)``: indices of the eCFDs satisfied by the decoded tuple."""
        witness = self.decode_tuple(assignment)
        return [
            index
            for index, constraint in enumerate(self.constraints)
            if constraint.satisfied_by_single_tuple(witness)
        ]


def _match_expression(attribute: str, pattern: PatternValue) -> Expression:
    """The Boolean encoding of ``t[attribute] ≍ pattern``."""
    if isinstance(pattern, Wildcard):
        return TRUE
    if isinstance(pattern, ValueSet):
        return disjoin([Var(variable_name(attribute, value)) for value in sorted(pattern.values, key=str)])
    if isinstance(pattern, ComplementSet):
        return conjoin(
            [Not(Var(variable_name(attribute, value))) for value in sorted(pattern.values, key=str)]
        )
    raise ConstraintError(f"unknown pattern kind {pattern!r}")


def _no_match_expression(attribute: str, pattern: PatternValue) -> Expression:
    """The Boolean encoding of ``t[attribute] ⋬ pattern`` (the dual of matching)."""
    if isinstance(pattern, Wildcard):
        return FALSE
    if isinstance(pattern, ValueSet):
        return conjoin(
            [Not(Var(variable_name(attribute, value))) for value in sorted(pattern.values, key=str)]
        )
    if isinstance(pattern, ComplementSet):
        return disjoin([Var(variable_name(attribute, value)) for value in sorted(pattern.values, key=str)])
    raise ConstraintError(f"unknown pattern kind {pattern!r}")


def _uniqueness_formula(attribute: str, candidates: Sequence[Value]) -> Expression:
    """``φ_i``: the template tuple takes exactly one value for ``attribute``."""
    at_least_one = disjoin([Var(variable_name(attribute, value)) for value in candidates])
    at_most_one = conjoin(
        [
            disjoin(
                [
                    Not(Var(variable_name(attribute, left))),
                    Not(Var(variable_name(attribute, right))),
                ]
            )
            for index, left in enumerate(candidates)
            for right in candidates[index + 1 :]
        ]
    )
    return conjoin([at_least_one, at_most_one])


def reduce_to_maxgsat(sigma: ECFDSet | Sequence[ECFD]) -> ReductionResult:
    """Compute ``f(Σ)`` and package it with the decoding data for ``g``."""
    constraints = list(sigma)
    if not constraints:
        raise ConstraintError("cannot reduce an empty set of eCFDs")
    schema = constraints[0].schema
    for constraint in constraints:
        if constraint.schema != schema:
            raise ConstraintError("all eCFDs in a reduction must share one schema")

    fragments = [fragment for constraint in constraints for fragment in constraint.normalize()]
    mentioned = mentioned_attributes(fragments)
    domains_all = active_domains(fragments, schema, fresh_per_attribute=1)
    domains = {attribute: domains_all[attribute] for attribute in mentioned}

    phi_r = conjoin(
        [_uniqueness_formula(attribute, domains[attribute]) for attribute in mentioned]
    )

    formulas: list[Expression] = []
    for constraint in constraints:
        per_pattern: list[Expression] = []
        for fragment in constraint.normalize():
            pattern = fragment.tableau[0]
            lhs_escape = disjoin(
                [
                    _no_match_expression(attribute, pattern.lhs_entry(attribute))
                    for attribute in fragment.lhs
                ]
            )
            rhs_hold = conjoin(
                [
                    _match_expression(attribute, pattern.rhs_entry(attribute))
                    for attribute in fragment.rhs_all
                ]
            )
            per_pattern.append(disjoin([lhs_escape, rhs_hold]))
        formulas.append(conjoin([phi_r, conjoin(per_pattern)]))

    return ReductionResult(
        instance=MaxGSATInstance(formulas),
        constraints=tuple(constraints),
        domains=domains,
        schema=schema,
    )
