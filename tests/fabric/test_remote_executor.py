"""End-to-end tests of ``executor="remote"``: the network lane executor.

A real worker fleet (forked ``python -m repro.parallel.worker`` processes)
backs every test; the module-scoped fleet is shared by the equivalence
tests — engines namespace their lanes and state keys, so co-tenancy is the
production situation, not a shortcut — while the kill tests fork their own
disposable fleets.
"""

from __future__ import annotations

import asyncio
import random

import pytest

from repro.engine import DataQualityEngine
from repro.exceptions import EngineError, FabricError
from repro.parallel.remote import (
    LocalWorkerHandle,
    RemoteWorkerPool,
    parse_address,
    resolve_worker_addresses,
    spawn_local_workers,
)
from repro.service import QualityService

from tests.parallel.test_summary_merge import (
    SCHEMA,
    _random_rows,
    _random_sigma,
    _reference,
)


def _remote_engine(sigma, addresses, workers=3, delegate="incremental", **kwargs):
    return DataQualityEngine(
        SCHEMA,
        sigma,
        backend=delegate,
        workers=workers,
        executor="remote",
        remote_workers=[f"{host}:{port}" for host, port in addresses],
        **kwargs,
    )


class TestAddressResolution:
    def test_parse_address_normalises_strings_and_pairs(self):
        assert parse_address("127.0.0.1:7001") == ("127.0.0.1", 7001)
        assert parse_address(("10.0.0.5", "7002")) == ("10.0.0.5", 7002)
        with pytest.raises(FabricError, match="host:port"):
            parse_address("no-port-here")
        with pytest.raises(FabricError, match="non-numeric"):
            parse_address("host:notaport")

    def test_resolution_precedence_explicit_env_spawn(self):
        env = {"REPRO_REMOTE_WORKERS": "10.0.0.1:7001, 10.0.0.2:7002"}
        # Explicit addresses win over everything.
        addresses, spawn = resolve_worker_addresses(["w1:1", "w2:2"], 4, environ=env)
        assert addresses == [("w1", 1), ("w2", 2)] and spawn == 0
        # None falls back to the environment fleet...
        addresses, spawn = resolve_worker_addresses(None, 4, environ=env)
        assert addresses == [("10.0.0.1", 7001), ("10.0.0.2", 7002)] and spawn == 0
        # ...and to spawning locals when that is empty too.
        addresses, spawn = resolve_worker_addresses(None, 4, environ={})
        assert addresses == [] and spawn == 4
        # An integer is a spawn count.
        addresses, spawn = resolve_worker_addresses(3, 4, environ={})
        assert addresses == [] and spawn == 3
        with pytest.raises(FabricError):
            resolve_worker_addresses(0, 4, environ={})
        with pytest.raises(FabricError):
            resolve_worker_addresses([], 4, environ={})

    def test_remote_workers_requires_remote_executor(self):
        with pytest.raises(EngineError, match="remote_workers"):
            DataQualityEngine(
                SCHEMA,
                _random_sigma(random.Random(0)),
                workers=2,
                executor="thread",
                remote_workers=["localhost:1"],
            )


class TestRemoteDetection:
    def test_one_shot_detection_matches_serial(self, worker_addresses):
        rng = random.Random(11)
        sigma = _random_sigma(rng)
        rows = _random_rows(rng, 200)
        reference = _reference(sigma, rows, backend="batch")
        engine = _remote_engine(sigma, worker_addresses, delegate="batch")
        engine.load(rows)
        assert engine.detect().violations == reference.violations
        assert engine.partition_stats()["replication_factor"] == 1.0
        engine.close()

    def test_detection_survives_a_dead_worker_via_repin(self):
        # The one-shot path is stateless: losing a worker costs one re-pin
        # and a resubmission of the failed shards, nothing more.
        fleet = spawn_local_workers(2)
        try:
            rng = random.Random(12)
            sigma = _random_sigma(rng)
            rows = _random_rows(rng, 150)
            reference = _reference(sigma, rows, backend="batch")
            engine = _remote_engine(
                sigma, [h.address for h in fleet], delegate="batch", rpc_timeout=10.0
            )
            engine.load(rows)
            assert engine.detect().violations == reference.violations
            fleet[0].kill()
            engine.backend._on_mutation()  # force a fresh fan-out
            assert engine.detect().violations == reference.violations
            stats = engine.backend.transport_stats()
            assert stats["lanes_lost"] >= 1 and stats["repins"] >= 1
            engine.close()
        finally:
            for handle in fleet:
                handle.stop()


class TestRemoteIncrementalUpdates:
    def test_update_stream_matches_serial_and_never_redetects(
        self, worker_addresses
    ):
        rng = random.Random(21)
        sigma = _random_sigma(rng)
        rows = _random_rows(rng, 200)

        serial = DataQualityEngine(
            SCHEMA, sigma, backend="incremental", workers=3, executor="serial"
        )
        serial.load(rows)
        serial.backend.ensure_ready()
        engine = _remote_engine(sigma, worker_addresses)
        engine.load(rows)
        engine.backend.ensure_ready()
        baseline = engine.backend.full_detect_count

        live = list(range(1, len(rows) + 1))
        next_tid = len(rows) + 1
        for _ in range(3):
            deletes = rng.sample(live, k=min(len(live), rng.randint(20, 40)))
            inserts = _random_rows(rng, rng.randint(0, 8))
            expected = serial.apply_update(delete_tids=deletes, insert_rows=inserts)
            result = engine.apply_update(delete_tids=deletes, insert_rows=inserts)
            assert result.incremental
            assert result.violations == expected.violations
            live = [tid for tid in live if tid not in set(deletes)]
            live.extend(range(next_tid, next_tid + len(inserts)))
            next_tid += len(inserts)

        trace = engine.backend.last_update_trace
        assert trace["mode"] == "incremental"
        assert trace["transport"]["rpc_calls"] > 0
        assert trace["transport"]["lanes_lost"] == 0
        assert engine.backend.full_detect_count == baseline
        assert engine.detect().violations == serial.detect().violations
        serial.close()
        engine.close()

    def test_shard_stats_name_each_lane_worker(self, worker_addresses):
        rng = random.Random(22)
        sigma = _random_sigma(rng)
        engine = _remote_engine(sigma, worker_addresses)
        engine.load(_random_rows(rng, 60))
        stats = engine.shard_stats()
        assert [entry["shard"] for entry in stats] == [0, 1, 2]
        fleet = {f"{host}:{port}" for host, port in worker_addresses}
        assert {entry["address"] for entry in stats} <= fleet
        # Lanes round-robin over the fleet, so both workers host lanes.
        assert len({entry["address"] for entry in stats}) == len(fleet)
        engine.close()

    def test_breakdown_matches_serial(self, worker_addresses):
        rng = random.Random(23)
        sigma = _random_sigma(rng)
        rows = _random_rows(rng, 150)
        serial = DataQualityEngine(
            SCHEMA, sigma, backend="incremental", workers=3, executor="serial"
        )
        serial.load(rows)
        serial.backend.ensure_ready()
        engine = _remote_engine(sigma, worker_addresses)
        engine.load(rows)
        engine.backend.ensure_ready()
        assert engine.backend.breakdown() == serial.backend.breakdown()
        serial.close()
        engine.close()


class TestWorkerLossRecovery:
    def test_killed_worker_mid_stream_rebootstraps_only_lost_shards(self):
        fleet = spawn_local_workers(2)
        try:
            rng = random.Random(31)
            sigma = _random_sigma(rng)
            rows = _random_rows(rng, 180)
            serial = DataQualityEngine(
                SCHEMA, sigma, backend="incremental", workers=3, executor="serial"
            )
            serial.load(rows)
            serial.backend.ensure_ready()
            engine = _remote_engine(
                sigma, [h.address for h in fleet], rpc_timeout=10.0
            )
            engine.load(rows)
            engine.backend.ensure_ready()
            baseline = engine.backend.full_detect_count

            # One healthy round first, then the crash.
            deletes = rng.sample(range(1, 181), k=30)
            expected = serial.apply_update(delete_tids=deletes)
            assert engine.apply_update(delete_tids=deletes).violations == expected.violations

            fleet[0].kill()  # SIGKILL: lanes 0 and 2 die with it
            survivors = {f"{fleet[1].address[0]}:{fleet[1].address[1]}"}
            live = sorted(set(range(1, 181)) - set(deletes))
            deletes = rng.sample(live, k=40)
            inserts = _random_rows(rng, 10)
            expected = serial.apply_update(delete_tids=deletes, insert_rows=inserts)
            result = engine.apply_update(delete_tids=deletes, insert_rows=inserts)
            assert result.violations == expected.violations

            trace = engine.backend.last_update_trace
            assert trace["lanes_lost"] == [0, 2]
            assert trace["recovered_shards"] == 2
            assert trace["recovery_attempts"] >= 1
            # Recovery re-bootstraps the lost shards only — never a hidden
            # full re-detection.
            assert engine.backend.full_detect_count == baseline
            assert {e["address"] for e in engine.shard_stats()} == survivors

            # The recovered fabric keeps maintaining state exactly.
            live = sorted(set(live) - set(deletes)) + list(
                range(181, 181 + len(inserts))
            )
            deletes = rng.sample(live, k=25)
            expected = serial.apply_update(delete_tids=deletes)
            assert engine.apply_update(delete_tids=deletes).violations == expected.violations
            assert engine.backend.full_detect_count == baseline
            serial.close()
            engine.close()
        finally:
            for handle in fleet:
                handle.stop()

    def test_losing_the_whole_fleet_is_a_fabric_error(self):
        fleet = spawn_local_workers(1)
        try:
            rng = random.Random(32)
            sigma = _random_sigma(rng)
            engine = _remote_engine(
                sigma, [fleet[0].address], workers=2, rpc_timeout=5.0
            )
            engine.load(_random_rows(rng, 80))
            engine.backend.ensure_ready()
            fleet[0].kill()
            with pytest.raises(FabricError):
                engine.apply_update(delete_tids=[1, 2, 3])
            engine.close()
        finally:
            for handle in fleet:
                handle.stop()


class TestOwnedFleet:
    def test_auto_spawned_workers_are_reaped_on_close(self):
        rng = random.Random(41)
        sigma = _random_sigma(rng)
        rows = _random_rows(rng, 80)
        reference = _reference(sigma, rows, backend="incremental")
        engine = DataQualityEngine(
            SCHEMA,
            sigma,
            backend="incremental",
            workers=2,
            executor="remote",
            remote_workers=1,  # spawn one local worker, owned by the backend
        )
        engine.load(rows)
        assert engine.detect().violations == reference.violations
        owned = list(engine.backend._owned_workers)
        assert len(owned) == 1 and owned[0].is_alive()
        engine.close()
        assert not owned[0].is_alive()


class TestRemoteQualityService:
    def test_service_streams_through_the_remote_fabric(self, worker_addresses):
        rng = random.Random(51)
        sigma = _random_sigma(rng)
        rows = _random_rows(rng, 120)
        serial = DataQualityEngine(SCHEMA, sigma, backend="incremental")
        serial.load(rows)
        serial.detect()

        async def scenario():
            service = QualityService(
                SCHEMA,
                sigma,
                workers=3,
                executor="remote",
                remote_workers=[f"{h}:{p}" for h, p in worker_addresses],
            )
            await service.start(rows)
            try:
                for _ in range(3):
                    deletes = rng.sample(sorted(await_tids), k=15)
                    inserts = _random_rows(rng, 5)
                    serial.apply_update(delete_tids=deletes, insert_rows=inserts)
                    receipt = await service.submit(deletes, inserts)
                    await receipt.wait_applied()
                    for tid in deletes:
                        await_tids.discard(tid)
                    await_tids.update(receipt.tids)
                counts = await service.detect()
                serial.detect()
                expected = serial.violation_counts()
                assert counts["sv"] == expected["sv"]
                assert counts["mv"] == expected["mv"]
                stats = await service.stats()
                assert stats["last_update_trace"]["transport"]["rpc_calls"] > 0
            finally:
                await service.stop()

        await_tids = set(range(1, 121))
        asyncio.run(scenario())
        serial.close()


class TestPoolContract:
    def test_pool_refuses_submission_after_close(self, worker_addresses):
        pool = RemoteWorkerPool(worker_addresses)
        assert pool.call(0, "ping", None, retryable=True)["pong"]
        pool.close()
        pool.close()  # idempotent
        with pytest.raises(FabricError, match="closed"):
            pool.submit(0, "ping", None)

    def test_lane_pinning_is_stable_and_round_robin(self, worker_addresses):
        pool = RemoteWorkerPool(worker_addresses)
        try:
            first = [pool.lane_address(lane) for lane in range(4)]
            assert first[0] == first[2] and first[1] == first[3]
            assert first[0] != first[1]
            assert pool.lanes_by_address(range(4)) == {
                first[0]: [0, 2],
                first[1]: [1, 3],
            }
        finally:
            pool.close()

    def test_ready_failure_raises_not_hangs(self):
        with pytest.raises(FabricError, match="did not become ready"):
            # An unbindable address: the worker exits before printing READY.
            LocalWorkerHandle.spawn(host="256.0.0.1", ready_timeout=30.0)
