"""Fig. 5(b): BATCHDETECT scalability in the error rate (noise %).

Paper setting: |D| = 100k, |Tp| = 10, noise swept from 0% to 9%.  Expected
shape: running time is essentially flat in the noise rate (detection cost is
dominated by the scan, not by how many violations exist).
"""

import pytest

from conftest import BENCH_SIZE, batch_engine, dataset_rows, sweep

NOISE_LEVELS = sweep([0.0, 1.0, 3.0, 5.0, 7.0, 9.0])


@pytest.mark.parametrize("noise", NOISE_LEVELS)
def test_fig5b_batchdetect_scalability_in_noise(benchmark, noise, base_workload):
    rows = dataset_rows(BENCH_SIZE, noise=noise)

    def setup():
        return (batch_engine(rows, base_workload),), {}

    def run(engine):
        return engine.detect()

    result = benchmark.pedantic(run, setup=setup, rounds=1, iterations=1)
    benchmark.extra_info["noise_percent"] = noise
    benchmark.extra_info["dirty"] = result.dirty_count
