"""RPL005 — DB engine thread affinity and driver confinement.

Engine connections (SQLite natively, DuckDB by contract) are thread-affine;
the fabric's whole execution model (one pinned lane thread per shard state)
exists to honor that.  Two sub-checks over ``src/`` and ``benchmarks/``:

* DB driver packages (``sqlite3``, ``duckdb``) are imported only in the
  sanctioned engine modules under ``detection/engines/`` — everything else
  speaks the abstract :class:`~repro.detection.engines.base.SqlEngine`;
* a name bound from ``sqlite3.connect(...)`` / ``duckdb.connect(...)`` is
  never referenced inside a lambda or nested function in the same frame —
  a closure is exactly how a connection leaks onto another executor's
  thread.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.lint.astutil import call_name, iter_function_defs
from repro.lint.model import SourceFile, Violation
from repro.lint.project import ProjectIndex

CODE = "RPL005"

#: DB driver packages the confinement applies to.
DB_DRIVER_MODULES = frozenset({"sqlite3", "duckdb"})

#: The only place allowed to import DB drivers directly.
SANCTIONED_ENGINE_PREFIX = "src/repro/detection/engines/"


def _driver_conn_names(scope: ast.AST) -> set[str]:
    names: set[str] = set()
    for node in ast.walk(scope):
        if (
            isinstance(node, ast.Assign)
            and isinstance(node.value, ast.Call)
            and call_name(node.value)
            in {f"{driver}.connect" for driver in DB_DRIVER_MODULES}
        ):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
    return names


def check_file(file: SourceFile, index: ProjectIndex) -> Iterator[Violation]:
    if not (file.in_src or file.is_benchmark):
        return
    sanctioned = file.rel.startswith(SANCTIONED_ENGINE_PREFIX)
    if not sanctioned:
        for node in ast.walk(file.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    driver = alias.name.split(".")[0]
                    if driver in DB_DRIVER_MODULES:
                        yield Violation(
                            CODE,
                            file.rel,
                            node.lineno,
                            node.col_offset,
                            f"DB driver {driver!r} imported outside the "
                            "sanctioned engine modules — route storage "
                            "through detection/engines/",
                        )
            elif isinstance(node, ast.ImportFrom):
                driver = (node.module or "").split(".")[0]
                if driver in DB_DRIVER_MODULES:
                    yield Violation(
                        CODE,
                        file.rel,
                        node.lineno,
                        node.col_offset,
                        f"DB driver {driver!r} imported outside the "
                        "sanctioned engine modules — route storage through "
                        "detection/engines/",
                    )

    # Closure-capture check applies everywhere, sanctioned modules included:
    # even an engine module must not hand its connection to another thread.
    for func in iter_function_defs(file.tree):
        conn_names = _driver_conn_names(func)
        if not conn_names:
            continue
        for node in ast.walk(func):
            inner: ast.AST | None = None
            if isinstance(node, ast.Lambda):
                inner = node
            elif (
                isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node is not func
            ):
                inner = node
            if inner is None:
                continue
            for ref in ast.walk(inner):
                if isinstance(ref, ast.Name) and ref.id in conn_names:
                    yield Violation(
                        CODE,
                        file.rel,
                        ref.lineno,
                        ref.col_offset,
                        f"DB connection {ref.id!r} captured in a "
                        "closure — connections are thread-affine and must "
                        "not escape the frame that opened them",
                    )
