"""Unit tests for LHS-key extraction and hash partitioning."""

import pytest

from repro.core import ECFD, Relation
from repro.core.schema import cust_ext_schema
from repro.datagen.generator import DatasetGenerator
from repro.datagen.workload import paper_workload
from repro.parallel import extract_partition_plan, partition_rows, shard_index
from repro.core.ecfd import ECFDSet


@pytest.fixture
def ext_schema():
    return cust_ext_schema()


@pytest.fixture
def sigma():
    return paper_workload()


class TestPartitionPlan:
    def test_every_fragment_assigned_exactly_once(self, sigma):
        plan = extract_partition_plan(sigma)
        assigned = [cid for cluster in plan for cid in cluster.fragment_cids()]
        expected = [cid for cid, _ in sigma.normalize()]
        assert sorted(assigned) == sorted(expected)
        assert len(assigned) == len(set(assigned))

    def test_fd_fragments_only_join_subset_keyed_clusters(self, sigma):
        """Co-location safety: an embedded-FD fragment's cluster key ⊆ its LHS."""
        plan = extract_partition_plan(sigma)
        for cluster in plan:
            for _, fragment in cluster.fragments:
                if fragment.requires_colocation():
                    assert set(cluster.key) <= set(fragment.lhs)

    def test_paper_workload_clusters_by_fd_lhs(self, sigma):
        keys = {cluster.key for cluster in extract_partition_plan(sigma)}
        assert keys == {("CT",), ("ZIP",), ("ITEM_TITLE",)}

    def test_sv_only_workload_gets_keyless_cluster(self, ext_schema):
        phi = ECFD(
            ext_schema,
            lhs=["CT"],
            rhs=[],
            pattern_rhs=["AC"],
            tableau=[({"CT": "NYC"}, {"AC": {"212", "718"}})],
        )
        plan = extract_partition_plan(ECFDSet([phi]))
        assert len(plan) == 1
        assert plan[0].key == ()

    def test_empty_lhs_fd_gets_colocate_all_cluster(self, ext_schema):
        """X = ∅ embedded FDs form one global group: single-shard cluster."""
        phi = ECFD(ext_schema, lhs=[], rhs=["CT"], tableau=[({}, {"CT": "_"})])
        plan = extract_partition_plan(ECFDSet([phi]))
        assert len(plan) == 1
        assert plan[0].colocate_all
        assert plan[0].key == ()

    def test_sv_only_cluster_is_not_colocate_all(self, ext_schema):
        phi = ECFD(
            ext_schema,
            lhs=["CT"],
            rhs=[],
            pattern_rhs=["AC"],
            tableau=[({"CT": "NYC"}, {"AC": {"212", "718"}})],
        )
        plan = extract_partition_plan(ECFDSet([phi]))
        assert len(plan) == 1
        assert not plan[0].colocate_all

    def test_requires_colocation_tracks_embedded_fd(self, ext_schema):
        fd = ECFD(ext_schema, ["CT"], ["AC"], tableau=[({"CT": "_"}, {"AC": "_"})])
        sv = ECFD(ext_schema, ["CT"], [], ["AC"], tableau=[({"CT": "NYC"}, {"AC": "212"})])
        assert fd.requires_colocation()
        assert not sv.requires_colocation()

    def test_plan_is_deterministic(self, sigma):
        first = [(c.key, c.fragment_cids()) for c in extract_partition_plan(sigma)]
        second = [(c.key, c.fragment_cids()) for c in extract_partition_plan(sigma)]
        assert first == second


class TestHashPartitioning:
    def test_shards_cover_relation_disjointly(self):
        rows = DatasetGenerator(seed=1).generate_rows(200, 10.0)
        relation = Relation(cust_ext_schema(), rows)
        shards = partition_rows(relation, ("CT",), 4)
        assert len(shards) == 4
        seen = [tid for shard in shards for tid, _ in shard]
        assert sorted(seen) == relation.tids()

    def test_key_groups_are_colocated(self):
        rows = DatasetGenerator(seed=2).generate_rows(300, 10.0)
        relation = Relation(cust_ext_schema(), rows)
        shards = partition_rows(relation, ("CT", "ZIP"), 8)
        location = {}
        for index, shard in enumerate(shards):
            for _, row in shard:
                key = (row["CT"], row["ZIP"])
                assert location.setdefault(key, index) == index

    def test_shard_index_is_stable_and_salt_free(self):
        # crc32, not the per-process-salted builtin hash: the same row must
        # map to the same shard in the coordinator and in every worker.
        row = {"CT": "NYC", "ZIP": "10001"}
        assert shard_index(row, ("CT",), 7) == shard_index(dict(row), ("CT",), 7)
        assert shard_index(row, ("CT",), 1) == 0

    def test_keyless_sharding_deals_by_tid(self):
        row = {"CT": "NYC"}
        assert shard_index(row, (), 4, tid=6) == 2
        assert shard_index(row, (), 4, tid=8) == 0

    def test_single_shard_keeps_everything(self):
        rows = DatasetGenerator(seed=3).generate_rows(50, 5.0)
        relation = Relation(cust_ext_schema(), rows)
        [shard] = partition_rows(relation, ("CT",), 1)
        assert [tid for tid, _ in shard] == relation.tids()

    def test_rows_are_stringified_like_backend_storage(self):
        relation = Relation(cust_ext_schema())
        relation.insert(
            {"AC": 518, "PN": 1, "NM": "a", "STR": "s", "CT": "Albany",
             "ZIP": 12238, "ITEM_TYPE": "book", "ITEM_TITLE": "t", "PRICE": 10}
        )
        [shard] = partition_rows(relation, ("ZIP",), 1)
        (_, row) = shard[0]
        assert row["ZIP"] == "12238" and row["AC"] == "518"
