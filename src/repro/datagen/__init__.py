"""Synthetic data and workload generation (paper Section VI experimental setting).

The paper's experiments use real scraped city/area-code/zip and store-item
data; this package provides deterministic synthetic stand-ins with the same
structural properties, a dataset generator with controlled noise injection,
the 10-eCFD workload (including the Fig. 2 constraints verbatim), tableau-
size sweeps, and update-batch generation for the incremental experiments.
"""

from repro.datagen.generator import DatasetGenerator
from repro.datagen.geography import CityRecord, area_codes, city_catalog, find_city
from repro.datagen.items import ITEM_TYPES, ItemRecord, item_catalog, price_band, titles_by_type
from repro.datagen.updates import UpdateBatch, UpdateEvent, UpdateGenerator
from repro.datagen.workload import (
    LI_AREA_CODES,
    NYC_AREA_CODES,
    paper_workload,
    paper_workload_with_tableau_size,
    tableau_sweep_ecfd,
)

__all__ = [
    "CityRecord",
    "DatasetGenerator",
    "ITEM_TYPES",
    "ItemRecord",
    "LI_AREA_CODES",
    "NYC_AREA_CODES",
    "UpdateBatch",
    "UpdateEvent",
    "UpdateGenerator",
    "area_codes",
    "city_catalog",
    "find_city",
    "item_catalog",
    "paper_workload",
    "paper_workload_with_tableau_size",
    "price_band",
    "tableau_sweep_ecfd",
    "titles_by_type",
]
