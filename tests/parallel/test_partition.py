"""Unit tests for partition planning and hash partitioning.

``extract_partition_plan`` is the legacy LHS clustering (still driving
primary-key selection and replication accounting); ``plan_partitions`` is
the single-pass plan the sharded backend executes.
"""

import pytest

from repro.core import ECFD, Relation
from repro.core.schema import cust_ext_schema
from repro.datagen.generator import DatasetGenerator
from repro.datagen.workload import paper_workload
from repro.parallel import (
    cluster_replication_factor,
    extract_partition_plan,
    partition_rows,
    plan_partitions,
    route_delta,
    shard_index,
)
from repro.core.ecfd import ECFDSet


@pytest.fixture
def ext_schema():
    return cust_ext_schema()


@pytest.fixture
def sigma():
    return paper_workload()


class TestPartitionPlan:
    def test_every_fragment_assigned_exactly_once(self, sigma):
        plan = extract_partition_plan(sigma)
        assigned = [cid for cluster in plan for cid in cluster.fragment_cids()]
        expected = [cid for cid, _ in sigma.normalize()]
        assert sorted(assigned) == sorted(expected)
        assert len(assigned) == len(set(assigned))

    def test_fd_fragments_only_join_subset_keyed_clusters(self, sigma):
        """Co-location safety: an embedded-FD fragment's cluster key ⊆ its LHS."""
        plan = extract_partition_plan(sigma)
        for cluster in plan:
            for _, fragment in cluster.fragments:
                if fragment.requires_colocation():
                    assert set(cluster.key) <= set(fragment.lhs)

    def test_paper_workload_clusters_by_fd_lhs(self, sigma):
        keys = {cluster.key for cluster in extract_partition_plan(sigma)}
        assert keys == {("CT",), ("ZIP",), ("ITEM_TITLE",)}

    def test_sv_only_workload_gets_keyless_cluster(self, ext_schema):
        phi = ECFD(
            ext_schema,
            lhs=["CT"],
            rhs=[],
            pattern_rhs=["AC"],
            tableau=[({"CT": "NYC"}, {"AC": {"212", "718"}})],
        )
        plan = extract_partition_plan(ECFDSet([phi]))
        assert len(plan) == 1
        assert plan[0].key == ()

    def test_empty_lhs_fd_gets_colocate_all_cluster(self, ext_schema):
        """X = ∅ embedded FDs form one global group: single-shard cluster."""
        phi = ECFD(ext_schema, lhs=[], rhs=["CT"], tableau=[({}, {"CT": "_"})])
        plan = extract_partition_plan(ECFDSet([phi]))
        assert len(plan) == 1
        assert plan[0].colocate_all
        assert plan[0].key == ()

    def test_sv_only_cluster_is_not_colocate_all(self, ext_schema):
        phi = ECFD(
            ext_schema,
            lhs=["CT"],
            rhs=[],
            pattern_rhs=["AC"],
            tableau=[({"CT": "NYC"}, {"AC": {"212", "718"}})],
        )
        plan = extract_partition_plan(ECFDSet([phi]))
        assert len(plan) == 1
        assert not plan[0].colocate_all

    def test_requires_colocation_tracks_embedded_fd(self, ext_schema):
        fd = ECFD(ext_schema, ["CT"], ["AC"], tableau=[({"CT": "_"}, {"AC": "_"})])
        sv = ECFD(ext_schema, ["CT"], [], ["AC"], tableau=[({"CT": "NYC"}, {"AC": "212"})])
        assert fd.requires_colocation()
        assert not sv.requires_colocation()

    def test_plan_is_deterministic(self, sigma):
        first = [(c.key, c.fragment_cids()) for c in extract_partition_plan(sigma)]
        second = [(c.key, c.fragment_cids()) for c in extract_partition_plan(sigma)]
        assert first == second


class TestSinglePassPlan:
    def test_every_fragment_on_exactly_one_side(self, sigma):
        plan = plan_partitions(sigma)
        assigned = [cid for cid, _ in plan.local_fragments + plan.summary_fragments]
        expected = [cid for cid, _ in sigma.normalize()]
        assert sorted(assigned) == sorted(expected)
        assert len(assigned) == len(set(assigned))

    def test_local_fds_contain_key_summary_fds_do_not(self, sigma):
        plan = plan_partitions(sigma)
        assert plan.key  # the paper workload offers a useful key
        for _, fragment in plan.local_fragments:
            if fragment.requires_colocation():
                assert set(plan.key) <= set(fragment.lhs)
        for _, fragment in plan.summary_fragments:
            assert fragment.requires_colocation()
            assert not set(plan.key) <= set(fragment.lhs)

    def test_primary_key_serves_most_fragments(self, sigma):
        """The key is the greedy cluster key covering the most embedded FDs."""
        plan = plan_partitions(sigma)
        fd_lhs = [
            set(f.lhs) for _, f in sigma.normalize()
            if f.requires_colocation() and f.lhs
        ]
        local = sum(1 for lhs in fd_lhs if set(plan.key) <= lhs)
        for cluster in extract_partition_plan(sigma):
            if cluster.key:
                assert sum(1 for lhs in fd_lhs if set(cluster.key) <= lhs) <= local

    def test_riders_are_always_local(self, ext_schema):
        fd = ECFD(ext_schema, lhs=[], rhs=["CT"], tableau=[({}, {"CT": "_"})])
        rider = ECFD(
            ext_schema, lhs=["CT"], rhs=[], pattern_rhs=["AC"],
            tableau=[({"CT": "NYC"}, {"AC": {"212", "718"}})],
        )
        plan = plan_partitions(ECFDSet([fd, rider]))
        assert plan.key == ()  # no embedded-FD LHS offers a hash key
        assert [f.requires_colocation() for _, f in plan.local_fragments] == [False]
        assert [f.lhs for _, f in plan.summary_fragments] == [()]

    def test_empty_lhs_fd_is_summary_merged(self, ext_schema):
        phi = ECFD(ext_schema, lhs=[], rhs=["CT"], tableau=[({}, {"CT": "_"})])
        plan = plan_partitions(ECFDSet([phi]))
        assert plan.local_fragments == []
        assert len(plan.summary_fragments) == 1

    def test_shard_fragments_project_summary_fds(self, sigma):
        plan = plan_partitions(sigma)
        projected = dict(plan.shard_fragments())
        for cid, fragment in plan.summary_fragments:
            projection = projected[cid]
            assert projection.rhs == ()
            assert projection.pattern_rhs == fragment.rhs + fragment.pattern_rhs
            assert projection.lhs == fragment.lhs
        for cid, fragment in plan.local_fragments:
            assert projected[cid] is fragment

    def test_replication_accounting(self, sigma):
        plan = plan_partitions(sigma)
        assert plan.replication_factor == 1.0
        assert cluster_replication_factor(sigma) == 3.0  # CT / ZIP / ITEM_TITLE

    def test_plan_is_deterministic(self, sigma):
        first = plan_partitions(sigma)
        second = plan_partitions(sigma)
        assert first.describe() == second.describe()

    def test_route_delta_routes_each_tuple_once(self, sigma):
        plan = plan_partitions(sigma)
        rows = DatasetGenerator(seed=4).generate_rows(50, 10.0)
        pairs = [(tid, {k: str(v) for k, v in row.items()}) for tid, row in enumerate(rows, start=1)]
        routed = route_delta(plan, 4, pairs[:20], pairs[20:])
        deletes = [tid for d, _ in routed.values() for tid, _ in d]
        inserts = [tid for _, i in routed.values() for tid, _ in i]
        assert sorted(deletes) == [tid for tid, _ in pairs[:20]]
        assert sorted(inserts) == [tid for tid, _ in pairs[20:]]
        # Routing agrees with load-time bucketing: keyed on the projection.
        for shard, (dels, ins) in routed.items():
            for tid, row in dels + ins:
                assert shard_index(row, plan.key, 4, tid) == shard


class TestHashPartitioning:
    def test_shards_cover_relation_disjointly(self):
        rows = DatasetGenerator(seed=1).generate_rows(200, 10.0)
        relation = Relation(cust_ext_schema(), rows)
        shards = partition_rows(relation, ("CT",), 4)
        assert len(shards) == 4
        seen = [tid for shard in shards for tid, _ in shard]
        assert sorted(seen) == relation.tids()

    def test_key_groups_are_colocated(self):
        rows = DatasetGenerator(seed=2).generate_rows(300, 10.0)
        relation = Relation(cust_ext_schema(), rows)
        shards = partition_rows(relation, ("CT", "ZIP"), 8)
        location = {}
        for index, shard in enumerate(shards):
            for _, row in shard:
                key = (row["CT"], row["ZIP"])
                assert location.setdefault(key, index) == index

    def test_shard_index_is_stable_and_salt_free(self):
        # crc32, not the per-process-salted builtin hash: the same row must
        # map to the same shard in the coordinator and in every worker.
        row = {"CT": "NYC", "ZIP": "10001"}
        assert shard_index(row, ("CT",), 7) == shard_index(dict(row), ("CT",), 7)
        assert shard_index(row, ("CT",), 1) == 0

    def test_keyless_sharding_deals_by_tid(self):
        row = {"CT": "NYC"}
        assert shard_index(row, (), 4, tid=6) == 2
        assert shard_index(row, (), 4, tid=8) == 0

    def test_single_shard_keeps_everything(self):
        rows = DatasetGenerator(seed=3).generate_rows(50, 5.0)
        relation = Relation(cust_ext_schema(), rows)
        [shard] = partition_rows(relation, ("CT",), 1)
        assert [tid for tid, _ in shard] == relation.tids()

    def test_rows_are_stringified_like_backend_storage(self):
        relation = Relation(cust_ext_schema())
        relation.insert(
            {"AC": 518, "PN": 1, "NM": "a", "STR": "s", "CT": "Albany",
             "ZIP": 12238, "ITEM_TYPE": "book", "ITEM_TITLE": "t", "PRICE": 10}
        )
        [shard] = partition_rows(relation, ("ZIP",), 1)
        (_, row) = shard[0]
        assert row["ZIP"] == "12238" and row["AC"] == "518"
