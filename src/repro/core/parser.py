"""Textual syntax for eCFDs: parser and serializer.

The paper presents eCFDs in the tableau notation of Fig. 2.  For a library
it is convenient to have a compact single-line syntax that can round-trip
through plain text (configuration files, test fixtures, command-line
arguments).  The grammar implemented here follows the paper's notation as
closely as ASCII allows::

    ecfd       :=  '(' relation ':' attr_list '->' attr_list [ '|' attr_list ]
                       ',' '{' pattern { ';' pattern } '}' ')'
    attr_list  :=  '[' [ ident { ',' ident } ] ']'
    pattern    :=  '(' entries '||' entries ')'
    entries    :=  [ entry { ',' entry } ]
    entry      :=  '_'  |  set  |  '!' set
    set        :=  '{' value { ',' value } '}'
    value      :=  ident | integer | quoted string

All parsed constants are strings (``{518}`` yields the string ``"518"``):
the paper's attribute values — area codes, zip codes, phone numbers — are
string-typed, and keeping a single parsed type avoids silent mismatches
between the constraint text and the data.  Integer constants can still be
used when building :class:`~repro.core.patterns.ValueSet` objects
programmatically; they render as bare digits and parse back as strings.

The LHS entry list of a pattern tuple follows the order of ``X``; the RHS
entry list follows ``Y`` then ``Yp``.  Example (eCFD ψ1 of Fig. 2)::

    (cust: [CT] -> [AC], { (!{NYC, LI} || _); ({Albany, Troy, Colonie} || {518}) })

and eCFD ψ2::

    (cust: [CT] -> [] | [AC], { ({NYC} || {212, 347, 646, 718, 917}) })

:func:`format_ecfd` renders an :class:`~repro.core.ecfd.ECFD` in this syntax
and :func:`parse_ecfd` parses it back; the pair round-trips (property-tested
in ``tests/core/test_parser.py``).
"""

from __future__ import annotations

import re
from collections.abc import Iterator

from repro.core.ecfd import ECFD, PatternTuple
from repro.core.patterns import (
    ComplementSet,
    PatternValue,
    ValueSet,
    Wildcard,
)
from repro.core.schema import RelationSchema, Value
from repro.exceptions import ParseError

__all__ = ["parse_ecfd", "parse_ecfd_set", "format_ecfd"]


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<arrow>->)
  | (?P<sep>\|\|)
  | (?P<punct>[()\[\]{},;:|!])
  | (?P<string>"(?:[^"\\]|\\.)*")
  | (?P<word>[A-Za-z0-9_.+-]+)
    """,
    re.VERBOSE,
)


class _Token:
    __slots__ = ("kind", "text", "position")

    def __init__(self, kind: str, text: str, position: int):
        self.kind = kind
        self.text = text
        self.position = position

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"_Token({self.kind}, {self.text!r}, {self.position})"


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise ParseError(
                f"unexpected character {text[position]!r} at offset {position}",
                text=text,
                position=position,
            )
        kind = match.lastgroup or ""
        if kind != "ws":
            tokens.append(_Token(kind, match.group(), position))
        position = match.end()
    return tokens


class _Parser:
    """Small recursive-descent parser over the token stream."""

    def __init__(self, text: str, schema: RelationSchema):
        self.text = text
        self.schema = schema
        self.tokens = _tokenize(text)
        self.index = 0

    # -------------------------------------------------------------- utils
    def _peek(self) -> _Token | None:
        if self.index < len(self.tokens):
            return self.tokens[self.index]
        return None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            raise ParseError("unexpected end of input", text=self.text, position=len(self.text))
        self.index += 1
        return token

    def _expect(self, text: str) -> _Token:
        token = self._next()
        if token.text != text:
            raise ParseError(
                f"expected {text!r} but found {token.text!r} at offset {token.position}",
                text=self.text,
                position=token.position,
            )
        return token

    def _at(self, text: str) -> bool:
        token = self._peek()
        return token is not None and token.text == text

    def at_end(self) -> bool:
        return self._peek() is None

    # ------------------------------------------------------------ grammar
    def parse_ecfd(self) -> ECFD:
        self._expect("(")
        relation = self._next()
        if relation.kind != "word":
            raise ParseError(
                f"expected a relation name at offset {relation.position}",
                text=self.text,
                position=relation.position,
            )
        if relation.text != self.schema.name:
            raise ParseError(
                f"eCFD is over relation {relation.text!r} but the supplied schema is "
                f"{self.schema.name!r}",
                text=self.text,
            )
        self._expect(":")
        lhs = self._parse_attr_list()
        self._expect("->")
        rhs = self._parse_attr_list()
        pattern_rhs: list[str] = []
        if self._at("|"):
            self._expect("|")
            pattern_rhs = self._parse_attr_list()
        self._expect(",")
        self._expect("{")
        patterns = [self._parse_pattern(lhs, rhs, pattern_rhs)]
        while self._at(";"):
            self._expect(";")
            patterns.append(self._parse_pattern(lhs, rhs, pattern_rhs))
        self._expect("}")
        self._expect(")")
        return ECFD(self.schema, lhs, rhs, pattern_rhs, patterns)

    def _parse_attr_list(self) -> list[str]:
        self._expect("[")
        names: list[str] = []
        if not self._at("]"):
            while True:
                token = self._next()
                if token.kind != "word":
                    raise ParseError(
                        f"expected an attribute name at offset {token.position}",
                        text=self.text,
                        position=token.position,
                    )
                names.append(token.text)
                if self._at(","):
                    self._expect(",")
                    continue
                break
        self._expect("]")
        return names

    def _parse_pattern(
        self, lhs: list[str], rhs: list[str], pattern_rhs: list[str]
    ) -> PatternTuple:
        self._expect("(")
        lhs_entries = self._parse_entries(len(lhs))
        self._expect("||")
        rhs_entries = self._parse_entries(len(rhs) + len(pattern_rhs))
        self._expect(")")
        lhs_map = dict(zip(lhs, lhs_entries))
        rhs_map = dict(zip(rhs + pattern_rhs, rhs_entries))
        return PatternTuple(lhs_map, rhs_map)

    def _parse_entries(self, expected: int) -> list[PatternValue]:
        entries: list[PatternValue] = []
        if expected == 0:
            return entries
        while True:
            entries.append(self._parse_entry())
            if self._at(","):
                self._expect(",")
                continue
            break
        if len(entries) != expected:
            token = self._peek()
            position = token.position if token else len(self.text)
            raise ParseError(
                f"pattern tuple lists {len(entries)} entries where {expected} were expected",
                text=self.text,
                position=position,
            )
        return entries

    def _parse_entry(self) -> PatternValue:
        token = self._peek()
        if token is None:
            raise ParseError("unexpected end of input in pattern entry", text=self.text)
        if token.text == "_":
            self._next()
            return Wildcard()
        if token.text == "!":
            self._next()
            return ComplementSet(self._parse_set())
        if token.text == "{":
            return ValueSet(self._parse_set())
        raise ParseError(
            f"expected '_', a set or '!set' at offset {token.position}, found {token.text!r}",
            text=self.text,
            position=token.position,
        )

    def _parse_set(self) -> list[Value]:
        self._expect("{")
        values: list[Value] = []
        while True:
            token = self._next()
            if token.kind == "string":
                values.append(_unquote(token.text))
            elif token.kind == "word":
                values.append(_coerce_word(token.text))
            else:
                raise ParseError(
                    f"expected a constant at offset {token.position}, found {token.text!r}",
                    text=self.text,
                    position=token.position,
                )
            if self._at(","):
                self._expect(",")
                continue
            break
        self._expect("}")
        return values


def _coerce_word(word: str) -> Value:
    """Bare tokens (including digit-only ones) are kept as strings."""
    return word


def _unquote(text: str) -> str:
    body = text[1:-1]
    return body.replace('\\"', '"').replace("\\\\", "\\")


def _quote_if_needed(value: Value) -> str:
    if isinstance(value, int):
        return str(value)
    if re.fullmatch(r"[A-Za-z0-9_.+-]+", value):
        return value
    escaped = value.replace("\\", "\\\\").replace('"', '\\"')
    return f'"{escaped}"'


# ----------------------------------------------------------------------
# Public API
# ----------------------------------------------------------------------
def parse_ecfd(text: str, schema: RelationSchema) -> ECFD:
    """Parse one eCFD from ``text`` over ``schema``.

    Raises :class:`~repro.exceptions.ParseError` on malformed input and
    :class:`~repro.exceptions.SchemaError` when the eCFD references unknown
    attributes.
    """
    parser = _Parser(text, schema)
    ecfd = parser.parse_ecfd()
    if not parser.at_end():
        trailing = parser._peek()
        assert trailing is not None
        raise ParseError(
            f"trailing input starting at offset {trailing.position}: {trailing.text!r}",
            text=text,
            position=trailing.position,
        )
    return ecfd


def parse_ecfd_set(text: str, schema: RelationSchema) -> list[ECFD]:
    """Parse several eCFDs, one per non-empty, non-comment line.

    Lines starting with ``#`` are ignored, which makes the format usable as
    a small constraint-definition file format.
    """
    result = []
    for line in text.splitlines():
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        result.append(parse_ecfd(stripped, schema))
    return result


def _format_entry(entry: PatternValue) -> str:
    if isinstance(entry, Wildcard):
        return "_"
    constants = sorted(entry.constants(), key=str)
    rendered = "{" + ", ".join(_quote_if_needed(v) for v in constants) + "}"
    if isinstance(entry, ComplementSet):
        return "!" + rendered
    return rendered


def format_ecfd(ecfd: ECFD) -> str:
    """Render an eCFD in the textual syntax accepted by :func:`parse_ecfd`."""
    lhs = "[" + ", ".join(ecfd.lhs) + "]"
    rhs = "[" + ", ".join(ecfd.rhs) + "]"
    yp = ""
    if ecfd.pattern_rhs:
        yp = " | [" + ", ".join(ecfd.pattern_rhs) + "]"
    patterns = []
    for pattern in ecfd.tableau:
        lhs_entries = ", ".join(_format_entry(pattern.lhs_entry(a)) for a in ecfd.lhs)
        rhs_entries = ", ".join(
            _format_entry(pattern.rhs_entry(a)) for a in ecfd.rhs + ecfd.pattern_rhs
        )
        patterns.append(f"({lhs_entries} || {rhs_entries})")
    body = "; ".join(patterns)
    return f"({ecfd.schema.name}: {lhs} -> {rhs}{yp}, {{ {body} }})"
