"""The figure registry: name → (group, generator), one command regenerates all.

A *figure generator* is a callable ``(ReportContext) -> list[FigureData]``
registered under a unique name and a presentation group.  The CLI, the
docs emitter and the CI reports job all enumerate this registry — adding
a figure here is the single step that makes it appear in
``python -m repro.reports list``, in ``all`` runs, and in the staleness
check over the committed renders.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable, Iterable

from repro.reports.context import ReportContext
from repro.reports.model import FigureData, UnknownFigureError

__all__ = [
    "FigureSpec",
    "register_figure",
    "available_figures",
    "figure_groups",
    "resolve_figure",
    "select_figures",
]

Generator = Callable[[ReportContext], "list[FigureData]"]


@dataclass(frozen=True)
class FigureSpec:
    """One registry entry."""

    name: str
    group: str
    title: str
    generator: Generator


_REGISTRY: dict[str, FigureSpec] = {}


def register_figure(name: str, group: str, title: str) -> Callable[[Generator], Generator]:
    """Class the decorated generator under ``name`` in the registry."""

    def decorate(generator: Generator) -> Generator:
        if name in _REGISTRY:
            raise ValueError(f"figure {name!r} is already registered")
        _REGISTRY[name] = FigureSpec(name=name, group=group, title=title, generator=generator)
        return generator

    return decorate


def _ensure_loaded() -> None:
    # The built-in generators live in repro.reports.figures and register
    # themselves on import; defer the import so registry and generators
    # can reference each other without a cycle.
    if not _REGISTRY:
        from repro.reports import figures  # noqa: F401, PLC0415


def available_figures() -> dict[str, FigureSpec]:
    """All registered figures, name-sorted."""
    _ensure_loaded()
    return {name: _REGISTRY[name] for name in sorted(_REGISTRY)}


def figure_groups() -> list[str]:
    """The distinct groups, in first-registration order."""
    _ensure_loaded()
    groups: list[str] = []
    for spec in _REGISTRY.values():
        if spec.group not in groups:
            groups.append(spec.group)
    return groups


def resolve_figure(name: str) -> FigureSpec:
    """The registry entry for ``name``; raises with the known names otherwise."""
    _ensure_loaded()
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise UnknownFigureError(
            f"unknown figure {name!r}; registered figures: {known} "
            f"(groups: {', '.join(figure_groups())})"
        ) from None


def select_figures(only: Iterable[str] | None = None) -> list[FigureSpec]:
    """The figures matching an ``--only`` filter (all of them by default).

    Each filter token selects by exact figure name or by group name;
    unknown tokens raise — a typo must not silently regenerate nothing.
    """
    _ensure_loaded()
    specs = list(available_figures().values())
    if not only:
        return specs
    tokens = list(only)
    groups = set(figure_groups())
    names = {spec.name for spec in specs}
    selected: list[FigureSpec] = []
    for token in tokens:
        if token not in names and token not in groups:
            raise UnknownFigureError(
                f"--only token {token!r} matches no figure or group; "
                f"figures: {', '.join(sorted(names))}; groups: {', '.join(sorted(groups))}"
            )
    for spec in specs:
        if spec.name in tokens or spec.group in tokens:
            selected.append(spec)
    return selected
