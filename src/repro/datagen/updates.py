"""Update-batch generation for the incremental-detection experiments.

Experiment 2 of the paper applies batches of tuple insertions (ΔD⁺) and
deletions (ΔD⁻) to a generated dataset and compares INCDETECT against
re-running BATCHDETECT.  The batches are parameterised by their sizes
(|ΔD⁺| and |ΔD⁻|, from 2k to 60k) and are always disjoint: "we always
ensure that ΔD⁺ and ΔD⁻ do not overlap".  When both sizes are equal the
database size |D| stays fixed across the update, which is what the Fig. 7
sweeps rely on.

:class:`UpdateGenerator` produces such batches deterministically:

* deletions are a uniform sample (without replacement) of the *current*
  tuple identifiers;
* insertions are fresh rows from a :class:`~repro.datagen.generator.DatasetGenerator`
  with the same noise rate as the base dataset, so the update does not
  change the dirtiness profile of the data.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from collections.abc import Iterator, Sequence

from repro.datagen.generator import DatasetGenerator

__all__ = ["UpdateBatch", "UpdateEvent", "UpdateGenerator"]


@dataclass(frozen=True)
class UpdateBatch:
    """One update ΔD: rows to insert and tuple identifiers to delete."""

    insert_rows: tuple[dict[str, str], ...]
    delete_tids: tuple[int, ...]

    @property
    def insert_count(self) -> int:
        return len(self.insert_rows)

    @property
    def delete_count(self) -> int:
        return len(self.delete_tids)


@dataclass(frozen=True)
class UpdateEvent:
    """One arrival of a Poisson update stream: when it lands and what it carries."""

    #: Seconds since the start of the stream (cumulative exponential gaps).
    arrival: float
    #: The update ΔD of this arrival.
    batch: UpdateBatch


class UpdateGenerator:
    """Generates disjoint insertion/deletion batches over an existing dataset."""

    def __init__(self, generator: DatasetGenerator, seed: int = 0):
        self.generator = generator
        self.rng = random.Random(seed)

    def make_batch(
        self,
        existing_tids: Sequence[int],
        insert_count: int,
        delete_count: int,
        noise_percent: float = 0.0,
    ) -> UpdateBatch:
        """One update batch.

        Parameters
        ----------
        existing_tids:
            The tuple identifiers currently present in the database; the
            deletions are sampled from these.
        insert_count / delete_count:
            Sizes of ΔD⁺ and ΔD⁻.
        noise_percent:
            Noise rate of the inserted rows (match the base dataset's rate
            to keep the overall error rate stable across the update).
        """
        if delete_count > len(existing_tids):
            raise ValueError(
                f"cannot delete {delete_count} tuples from a database of {len(existing_tids)}"
            )
        delete_tids = tuple(sorted(self.rng.sample(list(existing_tids), delete_count)))
        insert_rows = tuple(self.generator.generate_rows(insert_count, noise_percent))
        return UpdateBatch(insert_rows=insert_rows, delete_tids=delete_tids)

    def make_workload(
        self,
        existing_tids: Sequence[int],
        batches: int,
        insert_count: int,
        delete_count: int,
        noise_percent: float = 0.0,
    ) -> list[UpdateBatch]:
        """A stream of ``batches`` successive update batches over a live table.

        One-shot :meth:`make_batch` samples deletions from a *fixed* tid
        set, which is wrong from the second batch on: earlier batches have
        deleted some tuples and inserted new ones.  This method tracks the
        evolving tid population exactly like every backend's storage layer
        does — deletions are applied first, then insertions get fresh
        ``max(tid) + 1`` identifiers over the *remaining* rows — so a later
        batch never deletes a tuple that is already gone and may delete
        tuples inserted by an earlier batch.  That makes the workload safe
        to replay against any backend (single-threaded INCDETECT, sharded
        INCDETECT, full re-detection) for equivalence and throughput runs.
        """
        live = set(int(tid) for tid in existing_tids)
        workload: list[UpdateBatch] = []
        for _ in range(batches):
            batch = self.make_batch(
                sorted(live), insert_count, delete_count, noise_percent
            )
            live -= set(batch.delete_tids)
            start = (max(live) if live else 0) + 1
            live |= set(range(start, start + batch.insert_count))
            workload.append(batch)
        return workload

    def poisson_stream(
        self,
        existing_tids: Sequence[int],
        rate: float,
        events: int,
        ops_per_event: int = 1,
        insert_fraction: float = 0.5,
        noise_percent: float = 0.0,
    ) -> Iterator[UpdateEvent]:
        """A Poisson arrival process of small update batches over a live table.

        The sustained-throughput setting (fig. 11 and the quality service's
        tests) needs an *open* workload: updates arriving at a target
        ``rate`` (events per second, exponential inter-arrival gaps) rather
        than one big batch.  Each event carries ``ops_per_event`` operations,
        each an insertion with probability ``insert_fraction`` and a
        deletion of a live tuple otherwise (an event against an empty table
        falls back to insertions, so the stream never stalls).

        Tid tracking follows the same discipline as :meth:`make_workload` —
        deletions are applied to the live population first, then insertions
        take fresh ``max(live) + 1`` identifiers, so tids may be *reused*
        after a deletion exactly like every backend's storage layer reuses
        them.  That makes one stream replayable against any backend (and
        against the service's coalescer) for equivalence and throughput
        runs.  Everything — arrival gaps, op mix, deletion targets, inserted
        rows — draws from this generator's seeded RNG, so two generators
        built with the same seed yield identical streams.

        Yields :class:`UpdateEvent` lazily; materialise with ``list(...)``
        when the driver needs the whole schedule up front.
        """
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        if events < 0:
            raise ValueError(f"events must be >= 0, got {events}")
        if ops_per_event < 1:
            raise ValueError(f"ops_per_event must be >= 1, got {ops_per_event}")
        if not 0.0 <= insert_fraction <= 1.0:
            raise ValueError(
                f"insert_fraction must be in [0, 1], got {insert_fraction}"
            )
        live = set(int(tid) for tid in existing_tids)
        clock = 0.0
        for _ in range(events):
            clock += self.rng.expovariate(rate)
            inserts = 0
            delete_pool = sorted(live)
            delete_tids: list[int] = []
            for _ in range(ops_per_event):
                if delete_pool and self.rng.random() >= insert_fraction:
                    victim = delete_pool.pop(self.rng.randrange(len(delete_pool)))
                    delete_tids.append(victim)
                else:
                    inserts += 1
            rows = tuple(self.generator.generate_rows(inserts, noise_percent))
            batch = UpdateBatch(
                insert_rows=rows, delete_tids=tuple(sorted(delete_tids))
            )
            live -= set(batch.delete_tids)
            start = (max(live) if live else 0) + 1
            live |= set(range(start, start + batch.insert_count))
            yield UpdateEvent(arrival=clock, batch=batch)
