"""Deterministic Markdown emission: tables and generated-block injection.

The docs under ``docs/`` embed machine-generated tables between marker
comments::

    <!-- generated: perf-trajectory -->
    | ... table ... |
    <!-- /generated: perf-trajectory -->

:func:`inject_block` replaces only the content between a block's markers
(the surrounding prose stays hand-written), and the staleness check
regenerates every block and compares bytes — so the emitters here must be
deterministic: stable ordering, explicit number formatting, no
timestamps.
"""

from __future__ import annotations

import re

from repro.reports.model import FigureData, ReportError

__all__ = ["fmt_number", "markdown_table", "figure_markdown", "inject_block", "extract_block"]


def fmt_number(value: object, digits: int = 4) -> str:
    """A stable human rendering of one cell value.

    Integers print bare; floats round to ``digits`` significant decimals
    with trailing zeros trimmed (``0.0320`` → ``0.032``), so regenerated
    tables are byte-identical run to run.
    """
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        text = f"{value:.{digits}f}".rstrip("0").rstrip(".")
        return text if text not in ("", "-") else "0"
    return str(value)


def markdown_table(headers: list[str], rows: list[list[object]]) -> str:
    """A GitHub-flavored Markdown table with escaped pipes."""

    def cell(value: object) -> str:
        return fmt_number(value).replace("|", "\\|")

    lines = [
        "| " + " | ".join(cell(h) for h in headers) + " |",
        "|" + "|".join("---" for _ in headers) + "|",
    ]
    for row in rows:
        lines.append("| " + " | ".join(cell(value) for value in row) + " |")
    return "\n".join(lines)


def figure_markdown(figure: FigureData) -> str:
    """A figure's series as a Markdown table (one row per x, one column per series).

    This is the textual twin of the SVG render — same data, greppable and
    diffable, used for the perf-trajectory report emitted into ``docs/``.
    """
    labels = [series.label for series in figure.series]
    xs: list[float] = []
    for series in figure.series:
        for x, _ in series.points:
            if x not in xs:
                xs.append(x)
    xs.sort()
    by_series = [{x: y for x, y in series.points} for series in figure.series]

    def x_name(x: float) -> str:
        if figure.x_ticklabels is not None and int(x) < len(figure.x_ticklabels):
            return figure.x_ticklabels[int(x)]
        return fmt_number(x)

    rows = [
        [x_name(x)] + [
            fmt_number(values[x]) if x in values else "—" for values in by_series
        ]
        for x in xs
    ]
    table = markdown_table([figure.xlabel, *labels], rows)
    parts = [f"**{figure.title}** ({figure.ylabel})", "", table]
    if figure.caption:
        parts += ["", f"_{figure.caption}_"]
    return "\n".join(parts)


def _block_pattern(name: str) -> re.Pattern[str]:
    escaped = re.escape(name)
    return re.compile(
        rf"(<!-- generated: {escaped} -->\n).*?(<!-- /generated: {escaped} -->)",
        re.DOTALL,
    )


def inject_block(text: str, name: str, content: str) -> str:
    """Replace the generated block ``name`` in a document with ``content``.

    The markers themselves are preserved; the content is placed between
    them with a trailing newline.  Raises :class:`ReportError` when the
    document does not carry the block's markers — a silent no-op would let
    docs drift exactly the way this machinery exists to prevent.
    """
    pattern = _block_pattern(name)
    replaced, count = pattern.subn(
        lambda match: match.group(1) + content.rstrip("\n") + "\n" + match.group(2),
        text,
    )
    if count == 0:
        raise ReportError(
            f"generated block {name!r} not found "
            f"(expected '<!-- generated: {name} -->' ... '<!-- /generated: {name} -->')"
        )
    return replaced


def extract_block(text: str, name: str) -> str | None:
    """The current content of a generated block, or ``None`` if absent."""
    match = _block_pattern(name).search(text)
    if match is None:
        return None
    body = match.group(0)
    open_end = body.index("-->\n") + len("-->\n")
    close_start = body.rindex("<!-- /generated:")
    return body[open_end:close_start]
