"""Ablation: encoded SQL detection vs. naive per-pattern Python detection.

The paper's remark in Section V-A argues that encoding the pattern tableaux
as data (rather than expanding them into query text or evaluating them one
by one) keeps the number of database passes fixed and the space linear in
|Σ|.  This ablation pits BATCHDETECT against the reference pure-Python
detector, whose cost grows with the number of pattern tuples because every
pattern triggers its own scan.  Expected shape: the naive detector degrades
much faster as |Tp| grows.
"""

import pytest

from conftest import BENCH_SIZE, dataset_rows, prepared_batch_detector, sweep, workload_with_tableau
from repro.datagen.generator import DatasetGenerator
from repro.detection.naive import NaiveDetector

TABLEAU_SIZES = sweep([50, 200, 500])
SIZE = max(BENCH_SIZE // 4, 250)


@pytest.mark.parametrize("tableau_size", TABLEAU_SIZES)
def test_ablation_sql_batchdetect(benchmark, tableau_size):
    rows = dataset_rows(SIZE)
    sigma = workload_with_tableau(tableau_size)

    def setup():
        return (prepared_batch_detector(rows, sigma),), {}

    def run(detector):
        return detector.detect()

    violations = benchmark.pedantic(run, setup=setup, rounds=1, iterations=1)
    benchmark.extra_info["tableau_size"] = tableau_size
    benchmark.extra_info["dirty"] = len(violations)


@pytest.mark.parametrize("tableau_size", TABLEAU_SIZES)
def test_ablation_naive_python_detector(benchmark, tableau_size):
    relation = DatasetGenerator(seed=0).generate(SIZE, 5.0)
    sigma = workload_with_tableau(tableau_size)
    detector = NaiveDetector(sigma)

    violations = benchmark.pedantic(lambda: detector.detect(relation), rounds=1, iterations=1)
    benchmark.extra_info["tableau_size"] = tableau_size
    benchmark.extra_info["dirty"] = len(violations)
