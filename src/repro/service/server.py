"""TCP front end: JSON-lines requests over an asyncio stream server.

A thin network skin over :class:`~repro.service.service.QualityService` —
one JSON object per line in, one per line out, connections multiplexed on
the service's single event loop.  The protocol mirrors the async API:

========== =============================================== =================
``op``     request fields                                  reply payload
========== =============================================== =================
update     ``delete_tids`` (list), ``insert_rows`` (list)  ``tids`` (assigned)
detect     —                                               ``violations``
breakdown  —                                               ``breakdown``
repair     ``max_rounds`` (optional)                       ``repair`` summary
stats      —                                               ``stats``
ping       —                                               ``pong: true``
========== =============================================== =================

Every reply carries ``"ok": true`` or ``"ok": false`` plus ``"error"``; a
malformed line gets an error reply instead of killing the connection.  An
``update`` reply is sent only after the submission's window has shipped, so
a client's *next* request is guaranteed to observe its own writes.

:class:`QualityClient` is the matching blocking-free client coroutine
wrapper; the service smoke test and any out-of-process producer use it.
"""

from __future__ import annotations

import asyncio
import json
from collections.abc import Mapping, Sequence
from typing import Any

from repro.exceptions import ServiceTimeoutError
from repro.service.service import QualityService

__all__ = ["QualityServer", "QualityClient", "DEFAULT_REQUEST_TIMEOUT", "DEFAULT_MAX_LINE"]

#: Default per-request reply deadline of :class:`QualityClient`, seconds.
DEFAULT_REQUEST_TIMEOUT = 30.0

#: Default per-line byte bound of :class:`QualityServer` (a single JSON
#: request); a longer line gets an error reply and the connection closes.
DEFAULT_MAX_LINE = 8 * 1024 * 1024


class QualityServer:
    """Serve a :class:`QualityService` over TCP JSON-lines.

    Parameters
    ----------
    service:
        A **started** quality service; the server does not manage its
        lifecycle (stopping the server leaves the service running).
    host / port:
        Bind address; ``port=0`` picks an ephemeral port, reported by
        :attr:`port` after :meth:`start`.
    max_line:
        Upper bound on one request line's bytes.  A client exceeding it
        gets an ``ok: false`` reply naming the bound, then the connection
        closes — the stream is desynchronised past an oversized line, so
        it cannot be trusted for further framing.
    """

    def __init__(
        self,
        service: QualityService,
        host: str = "127.0.0.1",
        port: int = 0,
        max_line: int = DEFAULT_MAX_LINE,
    ):
        self.service = service
        self.host = host
        self.max_line = max_line
        self._requested_port = port
        self._server: asyncio.base_events.Server | None = None
        #: Connections accepted / requests served, for the smoke test.
        self.connections = 0
        self.requests = 0

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` to the ephemeral choice)."""
        if self._server is None:
            return self._requested_port
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle, self.host, self._requested_port, limit=self.max_line
        )

    async def stop(self) -> None:
        if self._server is None:
            return
        self._server.close()
        await self._server.wait_closed()
        self._server = None

    async def __aenter__(self) -> "QualityServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    # Protocol
    # ------------------------------------------------------------------
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.connections += 1
        try:
            while True:
                try:
                    line = await reader.readline()
                except ValueError:
                    # The line outgrew the stream limit.  Reply, then close:
                    # the unread tail would be parsed as the *next* request,
                    # so the stream cannot be resynchronised.
                    self.requests += 1
                    writer.write(
                        json.dumps(
                            {
                                "ok": False,
                                "error": f"request line exceeds {self.max_line} bytes",
                            }
                        ).encode()
                        + b"\n"
                    )
                    await writer.drain()
                    break
                except (ConnectionError, OSError):
                    # Client went away mid-request; nothing to reply to.
                    break
                if not line:
                    break
                reply = await self._dispatch(line)
                writer.write(json.dumps(reply).encode() + b"\n")
                await writer.drain()
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _dispatch(self, line: bytes) -> dict[str, Any]:
        self.requests += 1
        try:
            request = json.loads(line)
            if not isinstance(request, dict):
                raise ValueError("request must be a JSON object")
            op = request.get("op")
            if op == "update":
                receipt = await self.service.submit(
                    request.get("delete_tids", ()), request.get("insert_rows", ())
                )
                await receipt.wait_applied()
                return {"ok": True, "tids": receipt.tids}
            if op == "detect":
                return {"ok": True, "violations": await self.service.detect()}
            if op == "breakdown":
                breakdown = await self.service.breakdown()
                # JSON keys are strings; keep CIDs numeric on the client side.
                return {
                    "ok": True,
                    "breakdown": {str(cid): stats for cid, stats in breakdown.items()},
                }
            if op == "repair":
                result = await self.service.repair(
                    max_rounds=request.get("max_rounds", 10)
                )
                return {
                    "ok": True,
                    "repair": {
                        "rounds": result.rounds,
                        "cells_changed": result.cells_changed,
                        "cost": result.cost,
                        "clean": result.clean,
                    },
                }
            if op == "stats":
                return {"ok": True, "stats": await self.service.stats()}
            if op == "ping":
                return {"ok": True, "pong": True}
            raise ValueError(f"unknown op {op!r}")
        except Exception as exc:  # noqa: BLE001 - protocol boundary
            return {"ok": False, "error": f"{type(exc).__name__}: {exc}"}


class QualityClient:
    """A JSON-lines client coroutine for :class:`QualityServer`.

    One TCP connection, requests strictly pipelined (one in flight at a
    time — the reply order is the request order, so this client keeps it
    simple).  Usable as an async context manager.

    Every request carries a reply deadline (``request_timeout``, per-call
    overridable): a dead or wedged server raises
    :class:`~repro.exceptions.ServiceTimeoutError` instead of hanging the
    client forever.  After a timeout the connection is closed — a late
    reply would otherwise be read as the answer to the *next* request.
    """

    def __init__(
        self, host: str, port: int, request_timeout: float | None = DEFAULT_REQUEST_TIMEOUT
    ):
        self.host = host
        self.port = port
        self.request_timeout = request_timeout
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None

    async def connect(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(self.host, self.port)

    async def close(self) -> None:
        if self._writer is None:
            return
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass
        self._reader = self._writer = None

    async def __aenter__(self) -> "QualityClient":
        await self.connect()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    async def request(
        self, op: str, timeout: float | None = None, **fields: Any
    ) -> dict[str, Any]:
        """Send one request and await its reply; raises on ``ok: false``.

        ``timeout`` overrides the client's ``request_timeout`` for this
        call (``None`` falls back to it; a client constructed with
        ``request_timeout=None`` waits forever).  On expiry the connection
        is closed and :class:`~repro.exceptions.ServiceTimeoutError` is
        raised — the request may or may not have executed server-side.
        """
        assert self._reader is not None and self._writer is not None, "not connected"
        deadline = timeout if timeout is not None else self.request_timeout
        payload = {"op": op, **fields}
        self._writer.write(json.dumps(payload).encode() + b"\n")
        try:
            line = await asyncio.wait_for(self._round_trip(), deadline)
        except asyncio.TimeoutError:
            await self.close()
            raise ServiceTimeoutError(
                f"no reply to {op!r} from {self.host}:{self.port} "
                f"within {deadline}s"
            ) from None
        if not line:
            raise ConnectionError("server closed the connection")
        reply = json.loads(line)
        if not reply.get("ok"):
            raise RuntimeError(reply.get("error", "request failed"))
        return reply

    async def _round_trip(self) -> bytes:
        assert self._reader is not None and self._writer is not None
        await self._writer.drain()
        return await self._reader.readline()

    async def update(
        self,
        delete_tids: Sequence[int] = (),
        insert_rows: Sequence[Mapping[str, Any]] = (),
    ) -> list[int]:
        """Ship one update event; returns the assigned insert tids once applied."""
        reply = await self.request(
            "update", delete_tids=list(delete_tids), insert_rows=list(insert_rows)
        )
        return reply["tids"]

    async def detect(self) -> dict[str, int]:
        return (await self.request("detect"))["violations"]

    async def breakdown(self) -> dict[int, dict[str, int]]:
        reply = await self.request("breakdown")
        return {int(cid): stats for cid, stats in reply["breakdown"].items()}

    async def repair(self, max_rounds: int = 10) -> dict[str, Any]:
        return (await self.request("repair", max_rounds=max_rounds))["repair"]

    async def stats(self) -> dict[str, Any]:
        return (await self.request("stats"))["stats"]
