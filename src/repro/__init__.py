"""repro — extended Conditional Functional Dependencies (eCFDs).

A complete, from-scratch Python implementation of

    L. Bravo, W. Fan, F. Geerts, S. Ma.
    "Increasing the Expressivity of Conditional Functional Dependencies
    without Extra Complexity", ICDE 2008.

The library provides:

* the eCFD constraint language (:mod:`repro.core`) — pattern tableaux with
  wildcards, value sets (disjunction) and complement sets (inequality),
  together with CFDs and standard FDs as special cases;
* static analyses (:mod:`repro.analysis`) — exact satisfiability and
  implication checkers based on the paper's small-model properties, and the
  MAXSS approximation algorithm built on the MAXGSAT reduction of
  Section IV;
* a MAXGSAT solver suite (:mod:`repro.sat`) — exact, greedy and local-search
  solvers over a small Boolean-expression AST;
* SQL-based violation detection on SQLite (:mod:`repro.detection`) — the
  BATCHDETECT and INCDETECT algorithms of Section V plus a pure-Python
  oracle;
* the engine façade (:mod:`repro.engine`) — :class:`DataQualityEngine`, one
  public API over the whole lifecycle with pluggable detector backends and
  structured, serializable results;
* synthetic data / workload generation (:mod:`repro.datagen`) matching the
  experimental setting of Section VI;
* experiment drivers (:mod:`repro.experiments`) that regenerate every figure
  of the paper's evaluation;
* extensions sketched as future work in the paper: violation-driven repair
  with pluggable strategies — greedy, incremental (INCDETECT delta
  re-validation) and sharded (summary-elected group fixes) —
  (:mod:`repro.repair`, :mod:`repro.parallel.repair`) and eCFD discovery
  (:mod:`repro.discovery`).

Quickstart
----------

The engine façade runs the full workflow — validate the constraints, load
data, detect violations, repair, report — in a handful of lines:

>>> from repro import DataQualityEngine, cust_schema, parse_ecfd
>>> schema = cust_schema()
>>> phi = parse_ecfd(
...     "(cust: [CT] -> [AC], { (!{NYC, LI} || _);"
...     " ({Albany, Troy, Colonie} || {518}) })", schema)
>>> engine = DataQualityEngine(schema, [phi], backend="batch")
>>> engine.validate()
True
>>> engine.load([
...     {"AC": "718", "PN": "1111111", "NM": "Mike", "STR": "Tree Ave.",
...      "CT": "Albany", "ZIP": "12238"},
... ])
1
>>> result = engine.detect()
>>> sorted(result.violations.sv_tids)
[1]
>>> engine.repair().clean
True

Swap ``backend="batch"`` for ``"incremental"`` (INCDETECT maintains the
violation set across ``engine.apply_update(delta)`` calls) or ``"naive"``
(the pure-Python reference semantics) without touching the rest of the
workflow; ``register_backend`` plugs in new strategies.
"""

from repro.core import (
    CFD,
    ECFD,
    ECFDSet,
    FunctionalDependency,
    PatternTuple,
    Relation,
    RelationSchema,
    RelationTuple,
    ViolationSet,
    ComplementSet,
    ValueSet,
    Wildcard,
    cfd_from_ecfd,
    cust_ext_schema,
    cust_schema,
    format_ecfd,
    parse_ecfd,
    parse_ecfd_set,
)
from repro.engine import (
    DataQualityEngine,
    DetectionResult,
    DetectorBackend,
    QualityReport,
    RepairResult,
    available_backends,
    register_backend,
)
from repro.exceptions import EngineError, ReproError, UnknownBackendError
from repro.repair import (
    RepairStrategy,
    available_strategies,
    register_strategy,
)

__version__ = "1.10.0"

__all__ = [
    "CFD",
    "ComplementSet",
    "DataQualityEngine",
    "DetectionResult",
    "DetectorBackend",
    "ECFD",
    "ECFDSet",
    "EngineError",
    "FunctionalDependency",
    "PatternTuple",
    "QualityReport",
    "Relation",
    "RelationSchema",
    "RelationTuple",
    "RepairResult",
    "RepairStrategy",
    "ReproError",
    "UnknownBackendError",
    "ValueSet",
    "ViolationSet",
    "Wildcard",
    "available_backends",
    "available_strategies",
    "cfd_from_ecfd",
    "cust_ext_schema",
    "cust_schema",
    "format_ecfd",
    "parse_ecfd",
    "parse_ecfd_set",
    "register_backend",
    "register_strategy",
    "__version__",
]
