"""Deterministic per-round fix planning, shared by every repair strategy.

A repair round turns the current violation flags into a batch of
:class:`~repro.repair.cost.CellChange` fixes.  Every strategy — the greedy
baseline (full re-detection per round), the incremental repairer (INCDETECT
delta maintenance) and the sharded repairer (summary-elected group fixes) —
must derive the *same* batch from the same ``(relation, flags)`` state, or
their repaired relations diverge and the cross-strategy equivalence
guarantees collapse.  :class:`FixPlanner` is that shared derivation.  It
works from the uniform flag representation (SV / MV tid sets), not from
detailed violation records, because the SQL and sharded detectors maintain
flags only; the grouping structure is re-derived from the live relation
restricted to the flagged tuples — cost proportional to ``|vio(D)|``, never
to ``|D|``.

One round plans in two phases, in this order:

1. **Multi-tuple (embedded FD) fixes** are planned against the
   *start-of-round* snapshot: per fragment, the MV-flagged tuples matching
   the LHS pattern are grouped on their ``X`` projection, and each group
   holding ≥ 2 distinct RHS combinations elects a repair value with
   :func:`elect_rhs`.  Planned writes are applied only after the whole
   phase, so every fragment's election sees the same snapshot — which is
   also exactly the state the sharded coordinator's summary store describes
   (the store is only advanced by the previous round's deltas), letting the
   sharded strategy elect **directly from the merged yv multisets** and
   still agree bit-for-bit with the single-threaded baseline.
2. **Single-tuple (pattern constraint) fixes** run over the post-phase-1
   relation with immediate application: an SV-flagged tuple that still
   matches a fragment's LHS but fails its RHS pattern gets the failing
   attribute overwritten by :meth:`FixPlanner._pick_replacement`, which
   prefers values already in the column (served from a per-(round,
   attribute) active-domain cache — computed once per round, not once per
   violation).

Fix values follow the library's text storage discipline (every backend
stores values as text), so replacements drawn from pattern constants are
stringified before they are written.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from collections.abc import Callable, Mapping, Sequence

from repro.core.ecfd import ECFD, ECFDSet, PatternTuple
from repro.core.instance import Relation, RelationTuple
from repro.core.schema import Value
from repro.core.violations import ViolationSet
from repro.repair.cost import CellChange

__all__ = ["FixPlanner", "RoundPlan", "elect_rhs", "GroupCountsHook"]

#: Optional election source for multi-tuple fixes: ``hook(cid, xv)`` returns
#: the group's ``{yv: count}`` multiset (the sharded coordinator's merged
#: summary state) or ``None`` to fall back to counting the group's members
#: in the planning relation.
GroupCountsHook = Callable[[int, tuple], "Mapping[tuple, int] | None"]


def elect_rhs(
    counts: Mapping[tuple, int],
    pattern: PatternTuple,
    rhs_attributes: Sequence[str],
) -> tuple:
    """The RHS value vector a violating embedded-FD group is rewritten to.

    Majority vote over the group's ``{yv: count}`` multiset, restricted to
    combinations that also satisfy the fragment's own RHS pattern (an
    elected value failing the pattern would immediately re-violate the
    pattern constraint); when no combination qualifies, the unrestricted
    majority wins.  Ties break deterministically on the stringified value
    vector, so the election is independent of multiset iteration order —
    the property that lets the sharded coordinator elect from its merged
    summary store and still agree with a single-threaded count.
    """

    def admissible(yv: tuple) -> bool:
        return all(
            pattern.rhs_entry(a).matches(v) for a, v in zip(rhs_attributes, yv)
        )

    candidates = {yv: n for yv, n in counts.items() if n > 0 and admissible(yv)}
    if not candidates:
        candidates = {yv: n for yv, n in counts.items() if n > 0}
    best = max(candidates.values())
    return min(
        (yv for yv, n in candidates.items() if n == best),
        key=lambda yv: tuple(str(v) for v in yv),
    )


@dataclass
class RoundPlan:
    """The outcome of planning one repair round."""

    #: The planned cell changes, already applied to the planning relation.
    changes: list[CellChange] = field(default_factory=list)
    #: Multi-tuple fixes in ``changes`` (embedded-FD group rewrites).
    mv_fixes: int = 0
    #: Single-tuple fixes in ``changes`` (pattern-constraint rewrites).
    sv_fixes: int = 0
    #: Groups whose election came from a summary-store hook, not from rows.
    summary_groups: int = 0


class FixPlanner:
    """Deterministic fix derivation from violation flags and a live relation.

    Parameters
    ----------
    sigma:
        The constraint set being repaired; fixes are planned per normalized
        single-pattern fragment, in global CID order.
    """

    def __init__(self, sigma: ECFDSet | Sequence[ECFD]):
        self.sigma = sigma if isinstance(sigma, ECFDSet) else ECFDSet(list(sigma))
        self._fragments = self.sigma.normalize()

    # ------------------------------------------------------------------
    # Round planning
    # ------------------------------------------------------------------
    def plan_round(
        self,
        relation: Relation,
        violations: ViolationSet,
        group_counts: GroupCountsHook | None = None,
    ) -> RoundPlan:
        """Plan (and apply to ``relation``) one round of fixes.

        ``violations`` are the flags of ``relation``'s state at round start;
        ``group_counts`` optionally serves group elections from merged
        summaries (see :data:`GroupCountsHook`).  The returned plan's
        changes have already been written into ``relation`` — callers ship
        the same batch to their backend, keeping the two in lockstep.
        """
        plan = RoundPlan()
        self._plan_multi_fixes(relation, violations.mv_tids, group_counts, plan)
        self._plan_single_fixes(relation, violations.sv_tids, plan)
        return plan

    # ------------------------------------------------------------------
    # Multi-tuple (embedded FD) fixes
    # ------------------------------------------------------------------
    def _plan_multi_fixes(
        self,
        relation: Relation,
        mv_tids: frozenset[int],
        group_counts: GroupCountsHook | None,
        plan: RoundPlan,
    ) -> None:
        if not mv_tids:
            return
        ordered_tids = sorted(mv_tids)
        planned: list[CellChange] = []
        #: Cells already claimed this phase — elections are planned against
        #: one shared snapshot, so the first fragment (CID order) to claim a
        #: cell wins and later conflicting elections wait for the next round.
        written: set[tuple[int, str]] = set()
        for cid, fragment in self._fragments:
            if not fragment.rhs:
                continue  # pattern-only rider: no embedded FD to repair
            pattern = fragment.tableau[0]
            groups: dict[tuple, list[RelationTuple]] = {}
            for tid in ordered_tids:
                t = relation.get(tid)
                if t is None or not pattern.matches_lhs(t):
                    continue
                groups.setdefault(t.project(fragment.lhs), []).append(t)
            for xv in sorted(groups, key=lambda v: tuple(str(x) for x in v)):
                members = groups[xv]
                if len(members) < 2:
                    continue
                counts: Mapping[tuple, int] | None = None
                if group_counts is not None:
                    counts = group_counts(cid, xv)
                from_summary = counts is not None
                if counts is None:
                    counts = Counter(m.project(fragment.rhs) for m in members)
                if sum(1 for n in counts.values() if n > 0) < 2:
                    continue  # the group no longer (or never did) violate
                elected = elect_rhs(counts, pattern, fragment.rhs)
                if from_summary:
                    plan.summary_groups += 1
                for member in members:
                    assert member.tid is not None
                    for attribute, target in zip(fragment.rhs, elected):
                        cell = (member.tid, attribute)
                        if member[attribute] != target and cell not in written:
                            planned.append(
                                CellChange(member.tid, attribute, member[attribute], target)
                            )
                            written.add(cell)
        for change in planned:
            relation.replace_cell(change.tid, change.attribute, change.new_value)
        plan.changes.extend(planned)
        plan.mv_fixes += len(planned)

    # ------------------------------------------------------------------
    # Single-tuple (pattern constraint) fixes
    # ------------------------------------------------------------------
    def _plan_single_fixes(
        self, relation: Relation, sv_tids: frozenset[int], plan: RoundPlan
    ) -> None:
        if not sv_tids:
            return
        ordered_tids = sorted(sv_tids)
        #: Per-round active-domain cache: the sorted column values computed
        #: at most once per attribute, instead of once per violation.
        domain_cache: dict[str, list[Value]] = {}
        for cid, fragment in self._fragments:
            pattern = fragment.tableau[0]
            for tid in ordered_tids:
                t = relation.get(tid)
                if t is None or not pattern.matches_lhs(t) or pattern.matches_rhs(t):
                    continue  # already fixed by an earlier change this round
                attribute = pattern.failing_rhs_attribute(t)
                if attribute is None:
                    continue
                replacement = self._pick_replacement(
                    fragment, attribute, t[attribute], relation, domain_cache
                )
                if replacement is None or replacement == t[attribute]:
                    continue
                plan.changes.append(
                    CellChange(tid, attribute, t[attribute], replacement)
                )
                plan.sv_fixes += 1
                relation.replace_cell(tid, attribute, replacement)

    def _pick_replacement(
        self,
        fragment: ECFD,
        attribute: str,
        current: Value,
        relation: Relation,
        domain_cache: dict[str, list[Value]],
    ) -> Value | None:
        """A replacement value admitted by the fragment's RHS pattern.

        Prefers values already occurring in the column (they are more likely
        to be the intended correct value and to agree with other
        constraints); falls back to any admissible domain value, stringified
        to match the storage discipline.
        """
        domain = domain_cache.get(attribute)
        if domain is None:
            domain = sorted(relation.active_domain(attribute), key=str)
            domain_cache[attribute] = domain
        pattern = fragment.tableau[0].rhs_entry(attribute)
        for candidate in domain:
            if candidate != current and pattern.matches(candidate):
                return candidate
        fallback = pattern.pick(self.sigma.schema.domain(attribute), avoid=[current])
        if fallback is None or isinstance(fallback, str):
            return fallback
        return str(fallback)
