"""Fixtures for the repro.lint tests: throwaway project trees.

Every rule test builds a tiny tree in ``tmp_path`` that *mirrors the
real repo layout* (``src/repro/...``, ``benchmarks/``, ``tests/``) —
the checkers scope on those paths, so fixtures must live at realistic
relative locations.  The checkers are pure AST: fixture imports never
resolve and don't need to.
"""

from __future__ import annotations

import textwrap

import pytest

from repro.lint.runner import LintResult, run_lint


@pytest.fixture
def lint_tree(tmp_path):
    """Write ``{relpath: source}`` files and lint the resulting tree."""

    trees = iter(range(1000))

    def build(files: dict[str, str]) -> LintResult:
        # A fresh subtree per call: one test may lint several trees.
        root = tmp_path / f"tree{next(trees)}"
        for rel, text in files.items():
            path = root / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(textwrap.dedent(text), encoding="utf-8")
        roots = [
            root / part
            for part in ("src", "benchmarks", "tests")
            if (root / part).exists()
        ]
        return run_lint(roots, root)

    return build
