"""Length-prefixed asyncio RPC transport of the remote shard fabric.

The wire format is deliberately minimal — the lane/task protocol was shaped
for remote workers from the start (plain picklable dicts and tuples), so the
transport only needs framing, request/reply correlation and failure
classification:

* **Frame**: a 4-byte big-endian unsigned length ``N`` followed by ``N``
  bytes of pickle.  Frames above :data:`MAX_FRAME_BYTES` are refused on both
  sides before any allocation, so a corrupt length prefix cannot balloon
  memory.
* **Request**: ``(seq, lane, op, payload)`` — ``seq`` is a per-connection
  monotonically increasing correlation id, ``lane`` the stable lane
  identity (workers pin each lane's shard state to one executor thread by
  this id, surviving reconnects), ``op`` a registered operation name.
* **Reply**: ``(seq, ok, payload)`` — ``ok=False`` carries
  ``(exc_type, message, traceback)`` and is re-raised coordinator-side as
  :class:`~repro.exceptions.RemoteCallError`.

Replies are matched by ``seq``; anything with a *stale* sequence number is
discarded, which makes duplicated frames (a chaos proxy, a retransmitting
middlebox) harmless instead of desynchronising the stream.  A reply from
the *future* can only mean protocol corruption and severs the connection.

:class:`RpcConnection` is the client half used by the coordinator's lane
pool; the server half lives in :mod:`repro.parallel.worker`.  Per-call
timeouts are enforced with ``asyncio.wait_for``; once a call times out the
connection is poisoned (the reply stream can no longer be trusted) and the
lane above it re-pins.  :class:`RetryPolicy` centralises the exponential
backoff used for connection establishment and idempotent calls — the sleep
function is injectable so tests drive it without wall-clock waits.

Every operation that crosses this transport is **declared** with the
:func:`rpc_op` decorator, which records its name and — crucially — whether
it is idempotent.  Retries are only ever attached to registered-idempotent
ops: :meth:`RemoteWorkerPool.submit <repro.parallel.remote.RemoteWorkerPool.submit>`
refuses ``retryable=True`` for anything else at runtime, and the project
linter (``python -m repro.lint``, rule RPL002) cross-checks the same
invariant statically, so idempotency claims live in one machine-checked
registry instead of docstrings.
"""

from __future__ import annotations

import asyncio
import pickle
import struct
from collections.abc import Awaitable, Callable, Iterator
from dataclasses import dataclass, field
from typing import Any, TypeVar

from repro.exceptions import FabricError, RemoteCallError

__all__ = [
    "MAX_FRAME_BYTES",
    "FrameError",
    "TransportClosed",
    "RetryPolicy",
    "RpcConnection",
    "RpcOpSpec",
    "encode_frame",
    "idempotent_ops",
    "is_idempotent",
    "op_spec",
    "read_frame",
    "registered_ops",
    "rpc_op",
]

#: Hard bound on a single frame's payload (pickle) size.  Shard bootstraps
#: ship row lists, so this is generous; anything larger is a protocol error.
MAX_FRAME_BYTES = 256 * 1024 * 1024

_LENGTH = struct.Struct("!I")


class FrameError(FabricError):
    """A frame violated the wire format (oversized, truncated, unpicklable)."""


class TransportClosed(FabricError):
    """The peer went away mid-conversation (EOF, reset, poisoned stream)."""


# ----------------------------------------------------------------------
# The RPC-op registry: idempotency as declared, machine-checked fact
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RpcOpSpec:
    """One declared fabric operation.

    ``idempotent=True`` asserts that re-running the op after an *ambiguous*
    transport failure (the reply was lost — the op may or may not have
    executed) lands on the same state: stateless, read-only, or
    overwrite-on-rerun operations qualify.  Anything whose re-execution
    could double-apply an effect must be declared ``idempotent=False`` and
    is never retried — its failure path is lane loss and re-bootstrap.
    """

    name: str
    idempotent: bool


_RPC_OPS: dict[str, RpcOpSpec] = {}

_C = TypeVar("_C", bound=Callable[..., Any])


def rpc_op(name: str, *, idempotent: bool) -> Callable[[_C], _C]:
    """Declare a fabric RPC op and tag the decorated handler with its spec.

    Both halves of an operation carry the decorator — the coordinator-side
    shard function in :mod:`repro.parallel.sharded` and the worker-side
    handler in :mod:`repro.parallel.worker` — so either import populates
    the registry.  Re-declaring a name is allowed only with the *same*
    idempotency flag; a conflict raises :class:`~repro.exceptions.FabricError`
    immediately (at import time), because two sides disagreeing on whether
    an op may be retried is exactly the bug this registry exists to stop.
    """

    def decorate(handler: _C) -> _C:
        spec = _RPC_OPS.get(name)
        if spec is None:
            spec = RpcOpSpec(name=name, idempotent=idempotent)
            _RPC_OPS[name] = spec
        elif spec.idempotent != idempotent:
            raise FabricError(
                f"RPC op {name!r} re-declared with conflicting idempotency "
                f"(registered idempotent={spec.idempotent}, got {idempotent})"
            )
        handler.__rpc_op__ = spec  # type: ignore[attr-defined]
        return handler

    return decorate


def op_spec(name: str) -> RpcOpSpec:
    """The declared spec of op ``name``; unknown names raise."""
    try:
        return _RPC_OPS[name]
    except KeyError:
        known = ", ".join(sorted(_RPC_OPS)) or "(none declared)"
        raise FabricError(f"unknown RPC op {name!r}; declared ops: {known}") from None


def is_idempotent(name: str) -> bool:
    """Whether ``name`` is a *declared idempotent* op (unknown names are not)."""
    spec = _RPC_OPS.get(name)
    return spec is not None and spec.idempotent


def registered_ops() -> tuple[str, ...]:
    """Every declared op name, sorted."""
    return tuple(sorted(_RPC_OPS))


def idempotent_ops() -> frozenset[str]:
    """The declared-idempotent op names — the only ops a retry may touch."""
    return frozenset(name for name, spec in _RPC_OPS.items() if spec.idempotent)


def encode_frame(message: Any) -> bytes:
    """One wire frame: length prefix plus the pickled message."""
    payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    if len(payload) > MAX_FRAME_BYTES:
        raise FrameError(
            f"frame of {len(payload)} bytes exceeds the {MAX_FRAME_BYTES}-byte bound"
        )
    return _LENGTH.pack(len(payload)) + payload


async def read_frame(reader: asyncio.StreamReader) -> tuple[Any, int]:
    """Read exactly one frame; returns ``(message, wire_bytes)``.

    Raises :class:`TransportClosed` on EOF.  EOF *between* frames and EOF
    *inside* a frame are the same failure to a caller (the conversation is
    over either way), so both surface as :class:`TransportClosed` — the
    distinction only matters to chaos tests, which assert on recovery
    behaviour, not on which byte died.
    """
    try:
        prefix = await reader.readexactly(_LENGTH.size)
    except (asyncio.IncompleteReadError, ConnectionError, OSError) as exc:
        raise TransportClosed(f"connection closed while reading a frame: {exc}") from exc
    (length,) = _LENGTH.unpack(prefix)
    if length > MAX_FRAME_BYTES:
        raise FrameError(
            f"incoming frame announces {length} bytes, above the "
            f"{MAX_FRAME_BYTES}-byte bound — corrupt stream"
        )
    try:
        payload = await reader.readexactly(length)
    except (asyncio.IncompleteReadError, ConnectionError, OSError) as exc:
        raise TransportClosed(f"connection closed mid-frame: {exc}") from exc
    try:
        return pickle.loads(payload), _LENGTH.size + length
    except Exception as exc:  # noqa: BLE001 - anything unpicklable is a frame error
        raise FrameError(f"undecodable frame payload: {exc}") from exc


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff shared by connect and idempotent-call retries.

    ``attempts`` counts *tries*, not retries (1 means no retry at all);
    delays grow ``base_delay * factor**i`` capped at ``max_delay``.  The
    sleep coroutine is injectable so tests exercise the schedule without
    waiting on the wall clock.
    """

    attempts: int = 3
    base_delay: float = 0.05
    factor: float = 2.0
    max_delay: float = 2.0
    sleep: Callable[[float], Awaitable[None]] = field(default=asyncio.sleep, repr=False)

    def delays(self) -> Iterator[float]:
        """The backoff delay *after* each failed try (one fewer than tries)."""
        for i in range(max(0, self.attempts - 1)):
            yield min(self.max_delay, self.base_delay * (self.factor**i))

    async def run(self, attempt: Callable[[], Awaitable[Any]]) -> Any:
        """Run ``attempt`` under the policy; re-raises the last failure.

        Only transport-level failures (:class:`TransportClosed`,
        :class:`FrameError`, ``ConnectionError``, ``OSError``,
        ``asyncio.TimeoutError``) are retried — a
        :class:`~repro.exceptions.RemoteCallError` means the peer is healthy
        and re-running would re-execute a failed operation.
        """
        delays = self.delays()
        while True:
            try:
                return await attempt()
            except RemoteCallError:
                raise
            except (TransportClosed, FrameError, ConnectionError, OSError, asyncio.TimeoutError):
                # next() must not leak StopIteration into this coroutine
                # (PEP 479 turns it into a RuntimeError); a None sentinel
                # re-raises the transport failure instead.
                delay = next(delays, None)
                if delay is None:
                    raise
                await self.sleep(delay)


class RpcConnection:
    """One client connection to a shard worker, multiplexing calls by ``seq``.

    Calls are serialised through an internal lock (one request in flight per
    connection — lanes are single-worker executors, so there is never
    anything to overlap) and correlated by sequence number, which is what
    lets the connection discard duplicated or stale replies injected by a
    fault proxy.  After a timeout or stream error the connection is
    *poisoned*: the pending reply could arrive at any point, so no further
    call may trust the stream, and :meth:`call` fails fast until the owner
    reconnects.

    Byte counters (:attr:`bytes_sent` / :attr:`bytes_received`) feed the
    fabric's transport statistics.
    """

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        self._reader = reader
        self._writer = writer
        self._lock = asyncio.Lock()
        self._seq = 0
        self._poisoned: str | None = None
        self.bytes_sent = 0
        self.bytes_received = 0
        self.calls = 0

    @classmethod
    async def open(
        cls,
        host: str,
        port: int,
        retry: RetryPolicy | None = None,
        connect_timeout: float = 5.0,
    ) -> "RpcConnection":
        """Connect with backoff (a just-spawned worker may not be listening yet)."""
        policy = retry or RetryPolicy()

        async def attempt() -> "RpcConnection":
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(host, port), connect_timeout
            )
            return cls(reader, writer)

        try:
            return await policy.run(attempt)
        except (ConnectionError, OSError, asyncio.TimeoutError) as exc:
            raise TransportClosed(f"cannot connect to worker {host}:{port}: {exc}") from exc

    @property
    def healthy(self) -> bool:
        return self._poisoned is None and not self._writer.is_closing()

    def _poison(self, reason: str) -> None:
        self._poisoned = reason

    async def call(self, lane: str, op: str, payload: Any, timeout: float | None) -> Any:
        """One request/reply round-trip; raises typed transport errors.

        * :class:`TransportClosed` — EOF / reset / poisoned stream; the lane
          is lost and its shard state must be re-bootstrapped.
        * ``asyncio.TimeoutError`` — no reply within ``timeout``; the call
          may or may not have executed, so the stream is poisoned too.
        * :class:`~repro.exceptions.RemoteCallError` — the worker ran the
          operation and it raised; lane and state remain healthy.
        """
        async with self._lock:
            if self._poisoned is not None:
                raise TransportClosed(f"connection poisoned: {self._poisoned}")
            self._seq += 1
            seq = self._seq
            frame = encode_frame((seq, lane, op, payload))
            try:
                return await asyncio.wait_for(self._round_trip(seq, frame), timeout)
            except asyncio.TimeoutError:
                self._poison(f"no reply to {op!r} (seq {seq}) within {timeout}s")
                raise
            except (TransportClosed, FrameError, ConnectionError, OSError) as exc:
                self._poison(str(exc))
                raise

    async def _round_trip(self, seq: int, frame: bytes) -> Any:
        self.calls += 1
        self.bytes_sent += len(frame)
        self._writer.write(frame)
        await self._writer.drain()
        while True:
            reply, wire_bytes = await read_frame(self._reader)
            self.bytes_received += wire_bytes
            reply_seq, ok, result = reply
            if reply_seq < seq:
                # A duplicated or stale reply (fault injection, retransmit):
                # drop it and keep reading for ours.
                continue
            if reply_seq > seq:
                raise FrameError(
                    f"reply sequence {reply_seq} from the future (awaiting {seq})"
                )
            if ok:
                return result
            exc_type, message, remote_traceback = result
            raise RemoteCallError(exc_type, message, remote_traceback)

    async def close(self) -> None:
        self._poison("closed")
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass
