"""Fig. 10 (beyond the paper): repair convergence — wall time and rounds.

The paper's conclusion names "algorithms for eliminating eCFD violations and
repairing data" as future work; this benchmark measures the repair subsystem
the library grew from it.  The default noisy dataset (``REPRO_BENCH_SIZE``
tuples at 5% noise, the paper workload) is repaired to a clean state under
two strategies:

* ``greedy`` — the Bohannon-style baseline: every round re-runs a full
  reference detection over the whole relation;
* ``incremental`` — violation-driven repair: seeded once from the engine's
  maintained INCDETECT state, each round's fix batch re-validated by delta
  maintenance only (``full_detects`` stays 0 — asserted here).

``test_fig10_repair_convergence[incremental]`` is the repair hot path
tracked by the CI perf-regression gate (``benchmarks/check_regression.py``
against ``benchmarks/baseline.json``), alongside the fig8/fig9 detection
paths.  Convergence data (rounds, changed cells, re-detection rows avoided)
is recorded in ``extra_info`` so every ``BENCH_<sha>.json`` artifact carries
the repair trajectory.
"""

import os

import pytest

from conftest import BENCH_SIZE, dataset_rows

from repro.core.schema import cust_ext_schema
from repro.engine import DataQualityEngine

NOISE = 5.0
MAX_ROUNDS = 20
#: strategy -> engine backend it runs over (workers=1: single-threaded).
STRATEGIES = {"greedy": "batch", "incremental": "incremental"}


def _seeded_engine(rows, workload, backend: str) -> DataQualityEngine:
    engine = DataQualityEngine(cust_ext_schema(), workload, backend=backend)
    engine.load(rows)
    # vio(D) is known before the repair starts (the paper's standing
    # assumption for maintenance): the incremental strategy seeds from this
    # maintained state instead of paying a scan inside the timed region.
    engine.detect()
    return engine


@pytest.mark.parametrize("strategy", sorted(STRATEGIES))
def test_fig10_repair_convergence(benchmark, strategy, base_workload):
    rows = dataset_rows(BENCH_SIZE, NOISE)
    outcome = {}

    def setup():
        return (_seeded_engine(rows, base_workload, STRATEGIES[strategy]),), {}

    def run(engine):
        result = engine.repair(strategy=strategy, max_rounds=MAX_ROUNDS)
        outcome.update(result.trace, rounds=result.rounds, cells=result.cells_changed)
        engine.close()
        return result

    result = benchmark.pedantic(run, setup=setup, rounds=3, iterations=1)
    assert result.clean
    if strategy == "incremental":
        # Zero full re-detections after the seeding scan — the property the
        # strategy exists for, asserted on every benchmark run.
        assert result.trace["full_detects"] == 0
        assert result.trace["maintained_rounds"] == result.rounds
    benchmark.extra_info["strategy"] = strategy
    benchmark.extra_info["tuples"] = BENCH_SIZE
    benchmark.extra_info["cores"] = os.cpu_count()
    benchmark.extra_info["rounds"] = outcome.get("rounds", 0)
    benchmark.extra_info["cells_changed"] = outcome.get("cells", 0)
    benchmark.extra_info["full_detects"] = outcome.get("full_detects", 0)
    benchmark.extra_info["redetect_rows_avoided"] = outcome.get(
        "redetect_rows_avoided", 0
    )


def test_fig10_sharded_repair_exactness(base_workload):
    """Sharded repair (workers=4) is bit-exact vs. the greedy baseline."""
    rows = dataset_rows(BENCH_SIZE, NOISE)

    single = _seeded_engine(rows, base_workload, "batch")
    baseline = single.repair(strategy="greedy", max_rounds=MAX_ROUNDS)
    reference = {t.tid: t.values() for t in single.to_relation().tuples()}
    single.close()

    sharded = DataQualityEngine(
        cust_ext_schema(), base_workload, backend="incremental", workers=4
    )
    sharded.load(rows)
    sharded.detect()
    result = sharded.repair(max_rounds=MAX_ROUNDS)
    repaired = {t.tid: t.values() for t in sharded.to_relation().tuples()}
    trace = result.trace
    sharded.close()

    assert result.strategy == "sharded" and result.clean
    assert repaired == reference
    assert result.cost == baseline.cost
    assert result.cells_changed == baseline.cells_changed
    # Repair work is delta-routed: no full re-detection, and the summary
    # fragments' dirty groups were elected from the merged summary store.
    assert trace["full_detects"] == 0
    assert trace["summary_groups_repaired"] > 0
    print(
        f"\nfig10: |D|={BENCH_SIZE}: greedy {baseline.rounds} rounds / "
        f"{baseline.cells_changed} cells; sharded(4) {result.rounds} rounds, "
        f"{trace['summary_groups_repaired']} summary-elected groups, "
        f"{trace['redetect_rows_avoided']} re-detect rows avoided"
    )
