"""RPL003 — determinism of engine paths.

Scope: everything under ``src/repro/``.  The reproduction's anchor is
bit-exact equivalence of violations and repairs across executors, so
engine code may not consult wall clocks (``time.time``/``time_ns`` —
monotonic and perf counters are fine, they never feed results), draw
unseeded randomness, or iterate a set where order can reach output
without a ``sorted()``.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.lint.astutil import call_name
from repro.lint.model import SourceFile, Violation
from repro.lint.project import ProjectIndex

CODE = "RPL003"

_BANNED_CALLS = {
    "time.time": "wall-clock time.time() in an engine path",
    "time.time_ns": "wall-clock time.time_ns() in an engine path",
    "os.urandom": "os.urandom() in an engine path",
}

#: random.<name> calls that are fine: seeded-generator construction.
_RANDOM_FACTORIES = {"Random", "SystemRandom", "seed"}


def _is_set_expr(node: ast.expr) -> bool:
    if isinstance(node, ast.Set) or isinstance(node, ast.SetComp):
        return True
    if isinstance(node, ast.Call):
        target = call_name(node)
        return target in {"set", "frozenset"}
    return False


def check_file(file: SourceFile, index: ProjectIndex) -> Iterator[Violation]:
    if not file.in_src:
        return
    for node in ast.walk(file.tree):
        if isinstance(node, ast.Call):
            target = call_name(node)
            if target in _BANNED_CALLS:
                yield Violation(
                    CODE,
                    file.rel,
                    node.lineno,
                    node.col_offset,
                    _BANNED_CALLS[target]
                    + " — results must not depend on when they ran",
                )
            elif target and target.startswith("random."):
                tail = target.split(".", 1)[1]
                if tail == "Random" and not node.args:
                    yield Violation(
                        CODE,
                        file.rel,
                        node.lineno,
                        node.col_offset,
                        "unseeded random.Random() in an engine path — pass an "
                        "explicit seed",
                    )
                elif "." not in tail and tail not in _RANDOM_FACTORIES:
                    yield Violation(
                        CODE,
                        file.rel,
                        node.lineno,
                        node.col_offset,
                        f"module-level random.{tail}() shares unseeded global "
                        "state — use a seeded random.Random instance",
                    )
        iters: list[ast.expr] = []
        if isinstance(node, ast.For):
            iters.append(node.iter)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            iters.extend(gen.iter for gen in node.generators)
        for it in iters:
            if _is_set_expr(it):
                yield Violation(
                    CODE,
                    file.rel,
                    it.lineno,
                    it.col_offset,
                    "iterating a set without sorted() — set order is "
                    "process-dependent and can leak into output",
                )
