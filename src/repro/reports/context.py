"""The input bundle a figure generator draws from."""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from collections.abc import Sequence

from repro.experiments.reporting import ExperimentResult
from repro.reports.loaders import BenchRun, load_bench_dirs, load_experiment_dir
from repro.reports.model import ReportDataError

__all__ = ["ReportContext", "DEFAULT_BENCH_DIR", "repo_root"]


def repo_root() -> Path:
    """The repository root (three levels above this package)."""
    return Path(__file__).resolve().parents[3]


#: Where the committed artifact history lives, relative to the repo root.
DEFAULT_BENCH_DIR = "benchmarks/artifacts"


@dataclass
class ReportContext:
    """Loaded artifacts + optional experiment sweeps, ready for generators.

    ``runs`` is ordered oldest-first; :attr:`latest` (the newest run) feeds
    the per-figure generators, while the trajectory report walks all of
    them.  ``experiments`` maps experiment ids to driver-produced sweeps
    (``run_all --json-out``); when a figure's id is present there, the
    generator plots the driver's sweep — typically many more points than
    the CI-sized benchmark run — instead of the artifact's.
    """

    runs: list[BenchRun] = field(default_factory=list)
    experiments: dict[str, ExperimentResult] = field(default_factory=dict)

    @classmethod
    def load(
        cls,
        bench_dirs: Sequence[Path | str] | None = None,
        experiments_dir: Path | str | None = None,
    ) -> "ReportContext":
        """Load artifacts (default: the committed history) and sweeps."""
        dirs = list(bench_dirs) if bench_dirs else [repo_root() / DEFAULT_BENCH_DIR]
        runs = load_bench_dirs(dirs)
        experiments = load_experiment_dir(experiments_dir) if experiments_dir else {}
        return cls(runs=runs, experiments=experiments)

    @property
    def latest(self) -> BenchRun:
        if not self.runs:
            raise ReportDataError("no benchmark runs loaded")
        return self.runs[-1]

    def figure_rows(
        self,
        experiment_id: str,
        bench_specs: Sequence[tuple[str, str, Sequence[str]]],
    ) -> list[dict[str, object]]:
        """Normalized rows for one figure, preferring the driver's sweep.

        ``bench_specs`` maps the artifact's benchmark families onto series:
        ``(benchmark base name, series label, preferred x fields)``.
        """
        experiment = self.experiments.get(experiment_id)
        if experiment is not None and experiment.measurements:
            return list(experiment.rows())
        rows: list[dict[str, object]] = []
        for base, label, prefer in bench_specs:
            rows.extend(self.latest.rows(base, label=label, prefer=prefer))
        return rows
