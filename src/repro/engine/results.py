"""Structured, serializable result objects returned by the engine façade.

The detectors of :mod:`repro.detection` return
:class:`~repro.core.violations.ViolationSet` objects and loose count dicts;
the repairer returns its own audit object; the experiment harness carries
timings in yet another shape.  The engine façade normalises all of that into
three dataclasses:

* :class:`DetectionResult` — one detection pass: SV / MV / dirty counts,
  the violation set itself, wall-clock timings and (optionally) a
  per-constraint breakdown keyed by the normalized fragment identifiers
  (the ``CID`` values of the SQL encoding);
* :class:`RepairResult` — one repair pass: the number of modified cells and
  tuples, the weighted cost, convergence information and a serializable
  audit trail of cell changes;
* :class:`QualityReport` — a one-stop summary of the engine's current state
  (workload statistics, satisfiability, latest detection).

Every class offers ``to_dict()`` producing plain JSON-serializable data and
a ``from_dict()`` classmethod reconstructing an equal object, so results can
be logged, shipped across processes or archived next to experiment output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Mapping
from typing import Any

from repro.core.violations import ViolationSet

__all__ = ["DetectionResult", "RepairResult", "QualityReport"]


def _per_constraint_from_dict(data: Mapping[str, Any]) -> dict[int, dict[str, int]]:
    """Rebuild the per-constraint mapping with integer keys (JSON stringifies them)."""
    return {int(cid): dict(counts) for cid, counts in data.items()}


@dataclass
class DetectionResult:
    """The outcome of one detection pass through the engine.

    Attributes
    ----------
    backend:
        Name of the detector backend that produced the result.
    violations:
        The violation set ``vio(D)`` (compared by SV / MV tid-sets).
    tuple_count:
        Number of tuples in the database at detection time.
    sv_count / mv_count / dirty_count:
        The Fig. 7(b) counters: tuples with ``SV = 1``, with ``MV = 1`` and
        in ``vio(D)`` overall.
    seconds:
        Wall-clock time of the detection work itself.
    apply_seconds:
        Wall-clock time spent applying an update delta to storage before
        detection (0.0 for plain ``detect()`` calls and for incremental
        updates, where application and maintenance are fused).
    incremental:
        ``True`` when INCDETECT maintained the violation set for an update,
        ``False`` for full (re)computations.
    per_constraint:
        Optional breakdown keyed by normalized constraint identifier (the
        SQL encoding's ``CID``); populated when the caller asks for it.
    """

    backend: str
    violations: ViolationSet
    tuple_count: int
    sv_count: int
    mv_count: int
    dirty_count: int
    seconds: float
    apply_seconds: float = 0.0
    incremental: bool = False
    per_constraint: dict[int, dict[str, int]] = field(default_factory=dict)

    @classmethod
    def from_violations(
        cls,
        backend: str,
        violations: ViolationSet,
        tuple_count: int,
        seconds: float,
        apply_seconds: float = 0.0,
        incremental: bool = False,
        per_constraint: dict[int, dict[str, int]] | None = None,
    ) -> "DetectionResult":
        """Build a result, deriving the counters from the violation set."""
        summary = violations.summary()
        return cls(
            backend=backend,
            violations=violations,
            tuple_count=tuple_count,
            sv_count=summary["sv"],
            mv_count=summary["mv"],
            dirty_count=summary["dirty"],
            seconds=seconds,
            apply_seconds=apply_seconds,
            incremental=incremental,
            per_constraint=dict(per_constraint or {}),
        )

    @property
    def clean(self) -> bool:
        """``True`` when no tuple violates any constraint."""
        return self.dirty_count == 0

    @property
    def dirty_ratio(self) -> float:
        """Fraction of tuples in ``vio(D)`` (0.0 for an empty database)."""
        return self.dirty_count / self.tuple_count if self.tuple_count else 0.0

    def to_dict(self) -> dict[str, Any]:
        """A plain JSON-serializable representation."""
        return {
            "backend": self.backend,
            "sv_tids": sorted(self.violations.sv_tids),
            "mv_tids": sorted(self.violations.mv_tids),
            "tuple_count": self.tuple_count,
            "sv_count": self.sv_count,
            "mv_count": self.mv_count,
            "dirty_count": self.dirty_count,
            "seconds": self.seconds,
            "apply_seconds": self.apply_seconds,
            "incremental": self.incremental,
            "per_constraint": {str(cid): counts for cid, counts in self.per_constraint.items()},
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "DetectionResult":
        """Rebuild a result from :meth:`to_dict` output (detail records are not kept)."""
        return cls(
            backend=data["backend"],
            violations=ViolationSet.from_flags(data["sv_tids"], data["mv_tids"]),
            tuple_count=data["tuple_count"],
            sv_count=data["sv_count"],
            mv_count=data["mv_count"],
            dirty_count=data["dirty_count"],
            seconds=data["seconds"],
            apply_seconds=data.get("apply_seconds", 0.0),
            incremental=data.get("incremental", False),
            per_constraint=_per_constraint_from_dict(data.get("per_constraint", {})),
        )


@dataclass
class RepairResult:
    """The outcome of one repair pass through the engine.

    This is the library's *one* serializable repair audit type (the repair
    layer's working object is :class:`repro.repair.RepairOutcome`): the
    strategy's cell changes are flattened into plain dictionaries
    (``{"tid", "attribute", "before", "after"}``), the repair-path counters
    land in ``trace``, and the repaired relation itself is attached for
    in-process use but excluded from comparison and serialization.

    Attributes
    ----------
    strategy:
        Registry name of the repair strategy that produced the result
        (``"greedy"``, ``"incremental"``, ``"sharded"``, ...).
    trace:
        Repair-path diagnostics: ``full_detects`` (whole-relation detection
        passes the strategy ran), ``maintained_rounds`` (rounds re-validated
        by INCDETECT delta maintenance), ``redetect_rows_avoided`` (rows a
        full re-detection would have scanned in those rounds),
        ``summary_groups_repaired`` (cross-shard groups whose fix was
        elected from merged summaries) and ``rounds`` (the per-round
        convergence log).
    """

    backend: str
    clean: bool
    cells_changed: int
    tuples_changed: int
    cost: float
    rounds: int
    seconds: float
    changes: tuple[dict[str, Any], ...] = ()
    strategy: str = "greedy"
    trace: dict[str, Any] = field(default_factory=dict)
    relation: Any = field(default=None, compare=False, repr=False)

    def to_dict(self) -> dict[str, Any]:
        """A plain JSON-serializable representation (without the relation)."""
        return {
            "backend": self.backend,
            "strategy": self.strategy,
            "clean": self.clean,
            "cells_changed": self.cells_changed,
            "tuples_changed": self.tuples_changed,
            "cost": self.cost,
            "rounds": self.rounds,
            "seconds": self.seconds,
            "changes": [dict(change) for change in self.changes],
            "trace": dict(self.trace),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RepairResult":
        """Rebuild a result from :meth:`to_dict` output (no relation attached)."""
        return cls(
            backend=data["backend"],
            strategy=data.get("strategy", "greedy"),
            clean=data["clean"],
            cells_changed=data["cells_changed"],
            tuples_changed=data["tuples_changed"],
            cost=data["cost"],
            rounds=data["rounds"],
            seconds=data["seconds"],
            changes=tuple(dict(change) for change in data.get("changes", [])),
            trace=dict(data.get("trace", {})),
        )


@dataclass
class QualityReport:
    """A one-stop summary of the engine's workload and data-quality state."""

    schema_name: str
    backend: str
    constraint_count: int
    pattern_count: int
    satisfiable: bool
    tuple_count: int
    detection: DetectionResult

    @property
    def dirty_ratio(self) -> float:
        """Fraction of tuples in ``vio(D)``."""
        return self.detection.dirty_ratio

    def to_dict(self) -> dict[str, Any]:
        """A plain JSON-serializable representation (nested detection included)."""
        return {
            "schema_name": self.schema_name,
            "backend": self.backend,
            "constraint_count": self.constraint_count,
            "pattern_count": self.pattern_count,
            "satisfiable": self.satisfiable,
            "tuple_count": self.tuple_count,
            "dirty_ratio": self.dirty_ratio,
            "detection": self.detection.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "QualityReport":
        """Rebuild a report from :meth:`to_dict` output."""
        return cls(
            schema_name=data["schema_name"],
            backend=data["backend"],
            constraint_count=data["constraint_count"],
            pattern_count=data["pattern_count"],
            satisfiable=data["satisfiable"],
            tuple_count=data["tuple_count"],
            detection=DetectionResult.from_dict(data["detection"]),
        )
