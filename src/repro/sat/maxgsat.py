"""The MAXGSAT problem and its solvers.

MAXGSAT (Maximum Generalized Satisfiability, Papadimitriou 1994) is: given a
collection Φ = {ψ1, ..., ψk} of arbitrary Boolean expressions, find a truth
assignment that satisfies as many expressions as possible.  Section IV of
the paper reduces MAXSS — the maximum satisfiable subset of a set of eCFDs —
to MAXGSAT via an approximation-factor-preserving reduction, so "existing
approximation algorithms for MAXGSAT" can be applied.

This module defines :class:`MaxGSATInstance` (the problem),
:class:`MaxGSATResult` (an assignment plus the set of satisfied expression
indices) and a small solver suite:

* :func:`solve_exact` — exhaustive search over all assignments; exponential,
  used for small instances and as the ground truth in tests/ablations;
* :func:`solve_random` — best of ``rounds`` uniformly random assignments
  (the classical 1/2-approximation argument for GSAT-style problems, in
  expectation, when every expression is satisfiable by at least half of the
  assignments; for arbitrary expressions it is only a heuristic);
* :func:`solve_greedy` — Johnson-style greedy variable setting
  (:mod:`repro.sat.greedy`);
* :func:`solve_walksat` — GSAT/WalkSAT local search
  (:mod:`repro.sat.walksat`);
* :func:`solve_best` — runs greedy + walksat (and exact when the instance is
  small) and returns the best result; this is the default solver the MAXSS
  algorithm of :mod:`repro.analysis.maxss` uses.

All solvers are deterministic given the ``seed`` argument.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from collections.abc import Callable, Sequence

from repro.sat.expr import Expression

__all__ = [
    "MaxGSATInstance",
    "MaxGSATResult",
    "solve_exact",
    "solve_random",
    "solve_best",
    "SOLVERS",
]


@dataclass(frozen=True)
class MaxGSATInstance:
    """A MAXGSAT instance: a tuple of Boolean expressions."""

    expressions: tuple[Expression, ...]

    def __init__(self, expressions: Sequence[Expression]):
        object.__setattr__(self, "expressions", tuple(expressions))

    @property
    def size(self) -> int:
        """Number of expressions."""
        return len(self.expressions)

    def variables(self) -> list[str]:
        """All variable names, sorted for determinism."""
        names: set[str] = set()
        for expression in self.expressions:
            names |= expression.variables()
        return sorted(names)

    def satisfied_indices(self, assignment: dict[str, bool]) -> frozenset[int]:
        """Indices of the expressions satisfied by ``assignment``."""
        return frozenset(
            index
            for index, expression in enumerate(self.expressions)
            if expression.evaluate(assignment)
        )

    def score(self, assignment: dict[str, bool]) -> int:
        """Number of expressions satisfied by ``assignment``."""
        return len(self.satisfied_indices(assignment))


@dataclass(frozen=True)
class MaxGSATResult:
    """A solver outcome: the assignment found and what it satisfies."""

    assignment: dict[str, bool]
    satisfied: frozenset[int]

    @property
    def score(self) -> int:
        """Number of satisfied expressions."""
        return len(self.satisfied)


def _result(instance: MaxGSATInstance, assignment: dict[str, bool]) -> MaxGSATResult:
    return MaxGSATResult(assignment=dict(assignment), satisfied=instance.satisfied_indices(assignment))


def solve_exact(instance: MaxGSATInstance, max_variables: int = 22) -> MaxGSATResult:
    """Exhaustive optimal MAXGSAT.

    Enumerates all ``2^n`` assignments; refuses to run when the instance has
    more than ``max_variables`` variables (to protect callers from accidental
    exponential blow-ups — raise the limit explicitly if you really mean it).
    """
    variables = instance.variables()
    if len(variables) > max_variables:
        raise ValueError(
            f"exact MAXGSAT would enumerate 2^{len(variables)} assignments; "
            f"raise max_variables above {max_variables} to force it"
        )
    best_assignment: dict[str, bool] = {name: False for name in variables}
    best_score = instance.score(best_assignment)
    if best_score == instance.size:
        return _result(instance, best_assignment)
    for bits in itertools.product([False, True], repeat=len(variables)):
        assignment = dict(zip(variables, bits))
        score = instance.score(assignment)
        if score > best_score:
            best_assignment, best_score = assignment, score
            if best_score == instance.size:
                break
    return _result(instance, best_assignment)


def solve_random(instance: MaxGSATInstance, rounds: int = 64, seed: int = 0) -> MaxGSATResult:
    """Best of ``rounds`` uniformly random assignments."""
    rng = random.Random(seed)
    variables = instance.variables()
    best_assignment = {name: False for name in variables}
    best_score = instance.score(best_assignment)
    for _ in range(rounds):
        assignment = {name: rng.random() < 0.5 for name in variables}
        score = instance.score(assignment)
        if score > best_score:
            best_assignment, best_score = assignment, score
            if best_score == instance.size:
                break
    return _result(instance, best_assignment)


def solve_best(instance: MaxGSATInstance, seed: int = 0) -> MaxGSATResult:
    """Portfolio solver: greedy + WalkSAT, plus exact search when small.

    This is the default used by :func:`repro.analysis.maxss.max_satisfiable_subset`.
    """
    from repro.sat.greedy import solve_greedy
    from repro.sat.walksat import solve_walksat

    candidates = [solve_greedy(instance), solve_walksat(instance, seed=seed)]
    if len(instance.variables()) <= 16:
        candidates.append(solve_exact(instance))
    return max(candidates, key=lambda result: result.score)


#: Registry of named solvers, used by the ablation benchmark and the examples.
SOLVERS: dict[str, Callable[[MaxGSATInstance], MaxGSATResult]] = {
    "exact": solve_exact,
    "random": solve_random,
    "best": solve_best,
}


def _register_lazy_solvers() -> None:
    """Add the greedy / walksat entries without import cycles at module load."""
    from repro.sat.greedy import solve_greedy
    from repro.sat.walksat import solve_walksat

    SOLVERS.setdefault("greedy", solve_greedy)
    SOLVERS.setdefault("walksat", solve_walksat)
