"""Sharded multi-core detection: any delegate backend, fanned out per shard.

The paper's detectors (and their engine adapters) are single-threaded over
the whole relation.  :class:`ShardedBackend` scales them out on one machine:

1. the constraint set is compiled into a partition plan
   (:func:`repro.parallel.partition.extract_partition_plan`) — one hash
   partition pass per cluster of LHS-compatible embedded-FD fragments, with
   the co-location-free pattern constraints riding along;
2. for every cluster the stored relation is hash-partitioned into
   ``workers`` shared-nothing shards (tuples agreeing on the cluster key
   are co-located; a ``colocate_all`` cluster — empty-LHS embedded FDs —
   keeps the whole relation in one shard);
3. each non-empty shard becomes an independent task: a fresh delegate
   backend (``naive`` / ``batch`` / ``incremental``) is built in the worker,
   loaded with the shard and asked to detect.  The task carries the
   delegate's resolved *factory*, not its registry name, so runtime-registered
   delegates work even under ``spawn`` start methods where workers re-import
   a registry containing only the built-ins;
4. per-shard violation sets are remapped to the global constraint
   identifiers and merged.  Shards of one cluster partition the relation,
   and clusters partition the constraint set, so every (tuple, fragment)
   pair is examined exactly once — the merged result is identical to a
   single-threaded whole-relation pass.

Tasks run in a :mod:`concurrent.futures` pool.  ``executor="process"``
(default) sidesteps the GIL and suits the pure-Python and SQLite delegates
alike; ``"thread"`` avoids pickling overhead and still overlaps SQLite's
C-level work; ``"serial"`` runs the same sharded code path inline, which the
tests use to pin down partitioning semantics independent of pool behaviour.

The backend registers itself as ``"sharded"`` in the engine registry; the
:class:`~repro.engine.DataQualityEngine` routes through it automatically
when constructed with ``workers > 1``.
"""

from __future__ import annotations

import os
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Mapping, Sequence

from repro.core.ecfd import ECFD, ECFDSet
from repro.core.instance import Relation
from repro.core.schema import RelationSchema
from repro.core.violations import MultiTupleViolation, SingleTupleViolation, ViolationSet
from repro.engine.backends import (
    DetectorBackend,
    InMemoryRelationBackend,
    register_backend,
    resolve_backend_factory,
)
from repro.exceptions import EngineError
from repro.parallel.partition import bucket_rows, extract_partition_plan

__all__ = ["ShardedBackend", "DEFAULT_EXECUTOR", "detect_sharded"]

#: Executor kinds accepted by the backend.
_EXECUTORS = ("process", "thread", "serial")
DEFAULT_EXECUTOR = "process"

#: One unit of work:
#: (schema, delegate factory, [(global_cid, fragment)], rows, want_breakdown).
_ShardTask = tuple[
    RelationSchema,
    Callable[..., DetectorBackend],
    list[tuple[int, ECFD]],
    list[tuple[int, dict[str, str]]],
    bool,
]


def _remap_cids(violations: ViolationSet, mapping: Mapping[int, int]) -> ViolationSet:
    """Rewrite a shard-local violation set onto global constraint identifiers.

    Flag-only sets (the SQL delegates) keep their tid-sets untouched;
    detailed records (the naive delegate) get their ``constraint_id``
    translated so merged breakdowns attribute violations correctly.
    """
    remapped = ViolationSet.from_flags(violations.sv_tids, violations.mv_tids)
    for record in violations.single_records:
        remapped.add_single(
            SingleTupleViolation(
                tid=record.tid,
                constraint_id=mapping.get(record.constraint_id, record.constraint_id),
                attribute=record.attribute,
            )
        )
    for record in violations.multi_records:
        remapped.add_multi(
            MultiTupleViolation(
                constraint_id=mapping.get(record.constraint_id, record.constraint_id),
                lhs_values=record.lhs_values,
                tids=record.tids,
            )
        )
    return remapped


def _detect_shard(task: _ShardTask) -> tuple[ViolationSet, dict[int, dict[str, int]]]:
    """Run one delegate backend over one shard (executes inside a worker).

    Returns the shard's violation set and per-constraint breakdown (empty
    unless requested — for the SQL delegates it costs an extra grouped
    ``Q_sv`` pass), both keyed by global constraint identifiers.
    """
    schema, factory, fragments, rows, want_breakdown = task
    local_sigma = ECFDSet([fragment for _, fragment in fragments])
    # Single-pattern fragments normalize 1:1 in order, so the delegate's
    # local CIDs are simply 1..k over the fragment list.
    mapping = {local: cid for local, (cid, _) in enumerate(fragments, start=1)}

    backend = factory(schema=schema, sigma=local_sigma, path=":memory:")
    try:
        database = backend.database
        if database is not None:
            # SQL delegates: straight into the substrate, one pass, tids kept.
            database.insert_tuples([row for _, row in rows], tids=[tid for tid, _ in rows])
        else:
            shard = Relation(schema)
            for tid, row in rows:
                shard.insert_with_tid(tid, row)
            backend.load_relation(shard)
        violations = backend.detect()
        breakdown = backend.breakdown() if want_breakdown else {}
    finally:
        backend.close()
    return (
        _remap_cids(violations, mapping),
        {mapping.get(cid, cid): dict(stats) for cid, stats in breakdown.items()},
    )


class ShardedBackend(InMemoryRelationBackend):
    """Shared-nothing sharded detection over a pluggable delegate backend.

    Storage lives in the in-memory relation of the shared base class; every
    ``detect()`` partitions it according to the plan and fans the shards out.

    Parameters
    ----------
    schema / sigma / path:
        As for every backend; shard databases are always per-worker and
        in-memory, so a file-backed ``path`` is rejected rather than
        silently dropped — callers wanting on-disk persistence need a
        single-threaded SQL backend.
    delegate:
        Registry name of the backend run on every shard (``"naive"``,
        ``"batch"`` or ``"incremental"``); resolved to its factory at
        construction time.
    workers:
        Shards per partition pass and pool size; defaults to the machine's
        CPU count.
    executor:
        ``"process"`` (default), ``"thread"`` or ``"serial"``.
    """

    name = "sharded"

    def __init__(
        self,
        schema: RelationSchema,
        sigma: ECFDSet | Sequence[ECFD],
        path: str = ":memory:",
        delegate: str = "batch",
        workers: int | None = None,
        executor: str = DEFAULT_EXECUTOR,
    ):
        super().__init__(schema, sigma, path)
        if path != ":memory:":
            raise EngineError(
                "the sharded backend stores data in memory and cannot honour "
                f"path={path!r}; use a single-threaded SQL backend for "
                "file-backed storage"
            )
        if delegate == self.name:
            raise EngineError("the sharded backend cannot delegate to itself")
        if executor not in _EXECUTORS:
            raise EngineError(
                f"unknown executor {executor!r}; expected one of {_EXECUTORS}"
            )
        self.delegate = delegate
        self._delegate_factory = resolve_backend_factory(delegate)
        self.workers = workers if workers is not None else (os.cpu_count() or 1)
        if self.workers < 1:
            raise EngineError(f"workers must be >= 1, got {self.workers}")
        self.executor = executor
        self._plan = extract_partition_plan(self.sigma)
        self._pool: Executor | None = None
        self._last_violations: ViolationSet | None = None
        self._last_breakdown: dict[int, dict[str, int]] | None = None

    def _on_mutation(self) -> None:
        self._last_violations = None
        self._last_breakdown = None

    # ------------------------------------------------------------------
    # Detection
    # ------------------------------------------------------------------
    def _build_tasks(self, want_breakdown: bool) -> list[_ShardTask]:
        # Materialise every stored tuple once; clusters only re-hash the
        # projection, they never rebuild the row payloads.  Values are
        # already text (every ingestion path stringifies), so this is a
        # plain dict copy.
        rows = [
            (t.tid, t.as_dict())
            for t in self._relation.tuples()
            if t.tid is not None
        ]
        factory = self._delegate_factory
        if self.workers <= 1:
            # One shard, whole Σ — byte-for-byte the delegate's own pass.
            return [
                (self.schema, factory, list(self.sigma.normalize()), rows, want_breakdown)
            ]
        tasks: list[_ShardTask] = []
        for cluster in self._plan:
            if cluster.colocate_all:
                # Empty-LHS embedded FDs: one global X-group, one shard.
                if rows:
                    tasks.append(
                        (self.schema, factory, cluster.fragments, rows, want_breakdown)
                    )
                continue
            for shard in bucket_rows(rows, cluster.key, self.workers):
                if shard:
                    tasks.append(
                        (self.schema, factory, cluster.fragments, shard, want_breakdown)
                    )
        return tasks

    def _ensure_pool(self, task_count: int) -> Executor | None:
        """The reusable worker pool (``None`` for serial / single-task runs).

        Pool start-up (forking or spawning up to ``workers`` processes) is a
        fixed cost worth paying once, not once per detection, so the pool is
        created lazily and kept alive until :meth:`close`.
        """
        if self.executor == "serial" or min(self.workers, task_count) <= 1:
            return None
        if self._pool is None:
            pool_class = ThreadPoolExecutor if self.executor == "thread" else ProcessPoolExecutor
            self._pool = pool_class(max_workers=self.workers)
        return self._pool

    def detect(self) -> ViolationSet:
        return self._detect(want_breakdown=False)

    def detect_with_breakdown(self) -> ViolationSet:
        # Collect violations and per-constraint statistics in ONE sharded
        # pass; a later breakdown() call then hits the cache instead of
        # repeating the whole detection.
        return self._detect(want_breakdown=True)

    def _detect(self, want_breakdown: bool) -> ViolationSet:
        tasks = self._build_tasks(want_breakdown)
        merged = ViolationSet()
        breakdown: dict[int, dict[str, int]] = {}
        if tasks:
            pool = self._ensure_pool(len(tasks))
            if pool is None:
                results = [_detect_shard(task) for task in tasks]
            else:
                results = list(pool.map(_detect_shard, tasks))
            for shard_violations, shard_breakdown in results:
                merged.update(shard_violations)
                for cid, stats in shard_breakdown.items():
                    slot = breakdown.setdefault(cid, {"sv": 0, "mv_groups": 0, "mv_tuples": 0})
                    for key, value in stats.items():
                        slot[key] = slot.get(key, 0) + value
        self._last_violations = merged
        if want_breakdown:
            self._last_breakdown = dict(sorted(breakdown.items()))
        # A plain detect leaves any cached breakdown alone: the data has not
        # changed since it was computed (mutations invalidate both).
        return merged

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def violation_counts(self) -> dict[str, int]:
        if self._last_violations is None:
            self.detect()
        assert self._last_violations is not None
        return self._last_violations.summary()

    def breakdown(self) -> dict[int, dict[str, int]]:
        # The per-constraint statistics cost the SQL delegates an extra
        # grouped Q_sv pass, so plain detect() skips them; an uncached
        # breakdown request triggers one sharded pass collecting both.
        if self._last_breakdown is None:
            self._detect(want_breakdown=True)
        assert self._last_breakdown is not None
        return dict(self._last_breakdown)

    def shard_plan(self) -> list[tuple[tuple[str, ...], list[int]]]:
        """The partition plan as ``(key, [global CIDs])`` pairs, for callers
        that want to inspect or log how Σ was clustered."""
        return [(cluster.key, cluster.fragment_cids()) for cluster in self._plan]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None


def detect_sharded(
    relation: Relation,
    sigma: ECFDSet | Sequence[ECFD],
    delegate: str = "batch",
    workers: int | None = None,
    executor: str = DEFAULT_EXECUTOR,
) -> ViolationSet:
    """One-shot sharded detection over an in-memory relation.

    Convenience wrapper used by scripts and benchmarks that do not need the
    full backend lifecycle.
    """
    backend = ShardedBackend(
        relation.schema, sigma, delegate=delegate, workers=workers, executor=executor
    )
    try:
        backend.load_relation(relation)
        return backend.detect()
    finally:
        backend.close()


register_backend(ShardedBackend.name, ShardedBackend)
