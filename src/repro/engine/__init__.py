"""The engine subsystem: one façade over detection, repair and discovery.

* :mod:`repro.engine.facade` — :class:`DataQualityEngine`, the unified
  lifecycle (validate → load → detect → update → repair → report);
* :mod:`repro.engine.backends` — the :class:`DetectorBackend` interface,
  adapters for the three paper detectors and the string-keyed backend
  registry future storage strategies plug into;
* :mod:`repro.engine.results` — structured, serializable result objects
  (:class:`DetectionResult`, :class:`RepairResult`, :class:`QualityReport`).
"""

from repro.engine.backends import (
    BatchBackend,
    DetectorBackend,
    IncrementalBackend,
    NaiveBackend,
    available_backends,
    create_backend,
    register_backend,
    unregister_backend,
)
from repro.engine.facade import DEFAULT_CHUNK_SIZE, DataQualityEngine
from repro.engine.results import DetectionResult, QualityReport, RepairResult

__all__ = [
    "BatchBackend",
    "DEFAULT_CHUNK_SIZE",
    "DataQualityEngine",
    "DetectionResult",
    "DetectorBackend",
    "IncrementalBackend",
    "NaiveBackend",
    "QualityReport",
    "RepairResult",
    "available_backends",
    "create_backend",
    "register_backend",
    "unregister_backend",
]
