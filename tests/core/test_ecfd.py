"""Unit tests for eCFDs (repro.core.ecfd) — the semantics of Section II."""

import pytest

from repro.core.ecfd import ECFD, ECFDSet, PatternTuple
from repro.core.instance import Relation
from repro.core.patterns import ComplementSet, ValueSet, Wildcard
from repro.core.schema import RelationSchema, cust_schema
from repro.exceptions import ConstraintError, PatternError


class TestConstruction:
    def test_y_and_yp_must_be_disjoint(self, schema):
        with pytest.raises(ConstraintError):
            ECFD(
                schema,
                ["CT"],
                ["AC"],
                ["AC"],
                [PatternTuple({"CT": "_"}, {"AC": "_"})],
            )

    def test_empty_rhs_and_yp_rejected(self, schema):
        with pytest.raises(ConstraintError):
            ECFD(schema, ["CT"], [], [], [PatternTuple({"CT": "_"}, {})])

    def test_empty_tableau_rejected(self, schema):
        with pytest.raises(ConstraintError):
            ECFD(schema, ["CT"], ["AC"], [], [])

    def test_pattern_must_cover_exact_attributes(self, schema):
        with pytest.raises(PatternError):
            ECFD(schema, ["CT"], ["AC"], [], [PatternTuple({"CT": "_"}, {"ZIP": "_"})])
        with pytest.raises(PatternError):
            ECFD(schema, ["CT", "ZIP"], ["AC"], [], [PatternTuple({"CT": "_"}, {"AC": "_"})])

    def test_duplicate_attributes_rejected(self, schema):
        with pytest.raises(ConstraintError):
            ECFD(schema, ["CT", "CT"], ["AC"], [], [PatternTuple({"CT": "_"}, {"AC": "_"})])

    def test_literal_tableau_entries_accepted(self, schema):
        ecfd = ECFD(
            schema,
            ["CT"],
            ["AC"],
            tableau=[({"CT": {"Albany"}}, {"AC": "518"})],
        )
        assert len(ecfd.tableau) == 1
        assert ecfd.tableau[0].lhs_entry("CT") == ValueSet(["Albany"])
        assert ecfd.tableau[0].rhs_entry("AC") == ValueSet(["518"])

    def test_embedded_fd(self, psi1):
        fd = psi1.embedded_fd
        assert fd.lhs == ("CT",)
        assert fd.rhs == ("AC",)

    def test_attribute_on_both_sides_allowed(self):
        """The unsatisfiable example φ3 of Example 3.1 uses CT on both sides."""
        schema = cust_schema()
        phi3 = ECFD(
            schema,
            ["CT"],
            ["CT"],
            tableau=[
                ({"CT": {"NYC"}}, {"CT": {"NYC"}}),
                ({"CT": {"NYC"}}, {"CT": {"LI"}}),
            ],
        )
        assert phi3.lhs == ("CT",)
        assert phi3.rhs == ("CT",)


class TestSemantics:
    """Example 2.2 of the paper, executed."""

    def test_matching_tuples_for_psi1_first_pattern(self, psi1, d0):
        """D0(tp) = {t1, t2, t3} for the first pattern tuple of ψ1."""
        pattern = psi1.tableau[0]
        matching = psi1.matching_tuples(d0, pattern)
        assert {t.tid for t in matching} == {1, 2, 3}

    def test_d0_violates_psi1(self, psi1, d0):
        assert not psi1.is_satisfied_by(d0)

    def test_d0_violates_psi2(self, psi2, d0):
        assert not psi2.is_satisfied_by(d0)

    def test_t1_is_single_tuple_violation_of_psi1(self, psi1, d0):
        """t1 (Albany, 718) violates the second pattern of ψ1 all by itself."""
        violations = psi1.violations(d0, constraint_id=1)
        assert 1 in violations.sv_tids

    def test_t4_is_single_tuple_violation_of_psi2(self, psi2, d0):
        """t4 (NYC, 100) violates ψ2 since 100 is not an NYC area code."""
        violations = psi2.violations(d0, constraint_id=2)
        assert violations.sv_tids == frozenset({4})
        assert violations.mv_tids == frozenset()

    def test_clean_tuples_not_flagged(self, psi1, psi2, d0):
        sigma = ECFDSet([psi1, psi2])
        violations = sigma.violations(d0)
        # t2, t3 (Colonie/Troy with 518) and t5, t6 (NYC with valid codes) are clean.
        assert {2, 3, 5, 6}.isdisjoint(violations.violating_tids)
        assert violations.violating_tids == {1, 4}

    def test_repaired_d0_satisfies_sigma(self, psi1, psi2, d0):
        """Fixing t1's area code and t4's area code makes D0 clean."""
        d0.delete(1)
        d0.delete(4)
        d0.insert({"AC": "518", "PN": "1111111", "NM": "Mike", "STR": "Tree Ave.", "CT": "Albany", "ZIP": "12238"})
        d0.insert({"AC": "212", "PN": "1111111", "NM": "Rick", "STR": "8th Ave.", "CT": "NYC", "ZIP": "10001"})
        sigma = ECFDSet([psi1, psi2])
        assert sigma.is_satisfied_by(d0)

    def test_embedded_fd_violation_detected_as_mv(self, schema):
        """Two tuples with the same city outside NYC/LI but different area codes."""
        ecfd = ECFD(
            schema,
            ["CT"],
            ["AC"],
            tableau=[({"CT": ComplementSet(["NYC", "LI"])}, {"AC": "_"})],
        )
        relation = Relation(
            schema,
            [
                {"AC": "518", "PN": "1", "NM": "a", "STR": "s", "CT": "Troy", "ZIP": "1"},
                {"AC": "519", "PN": "2", "NM": "b", "STR": "s", "CT": "Troy", "ZIP": "1"},
            ],
        )
        violations = ecfd.violations(relation, constraint_id=1)
        assert violations.mv_tids == frozenset({1, 2})
        assert violations.sv_tids == frozenset()

    def test_fd_not_enforced_across_patterns(self, schema):
        """Tuples matching different pattern tuples are not compared by the FD."""
        ecfd = ECFD(
            schema,
            ["CT"],
            ["AC"],
            tableau=[
                ({"CT": {"Troy"}}, {"AC": "_"}),
                ({"CT": {"Albany"}}, {"AC": "_"}),
            ],
        )
        relation = Relation(
            schema,
            [
                {"AC": "518", "PN": "1", "NM": "a", "STR": "s", "CT": "Troy", "ZIP": "1"},
                {"AC": "999", "PN": "2", "NM": "b", "STR": "s", "CT": "Albany", "ZIP": "1"},
            ],
        )
        assert ecfd.is_satisfied_by(relation)

    def test_single_tuple_check(self, psi1, psi2):
        good = {"AC": "518", "PN": "1", "NM": "x", "STR": "s", "CT": "Albany", "ZIP": "1"}
        bad = {"AC": "100", "PN": "1", "NM": "x", "STR": "s", "CT": "NYC", "ZIP": "1"}
        assert psi1.satisfied_by_single_tuple(good)
        assert psi2.satisfied_by_single_tuple(good)
        assert psi2.satisfied_by_single_tuple({**good, "CT": "NYC", "AC": "212"})
        assert not psi2.satisfied_by_single_tuple(bad)

    def test_unsatisfiable_example_3_1(self, schema):
        """φ3 of Example 3.1: no single tuple can satisfy it.

        The second pattern forces CT = NYC for every tuple; the first then
        requires a CT = NYC tuple to have CT = LI, so no witness exists.
        """
        phi3 = ECFD(
            schema,
            ["CT"],
            ["CT"],
            tableau=[
                ({"CT": {"NYC"}}, {"CT": {"LI"}}),
                ({"CT": "_"}, {"CT": {"NYC"}}),
            ],
        )
        nyc_tuple = {"AC": "212", "PN": "1", "NM": "x", "STR": "s", "CT": "NYC", "ZIP": "1"}
        other_tuple = {"AC": "518", "PN": "1", "NM": "x", "STR": "s", "CT": "Troy", "ZIP": "1"}
        assert not phi3.satisfied_by_single_tuple(nyc_tuple)
        assert not phi3.satisfied_by_single_tuple(other_tuple)


class TestNormalization:
    def test_normalize_splits_patterns(self, psi1):
        fragments = psi1.normalize()
        assert len(fragments) == 2
        assert all(len(f.tableau) == 1 for f in fragments)
        assert fragments[0].lhs == psi1.lhs
        assert fragments[0].rhs == psi1.rhs

    def test_normalization_preserves_satisfaction(self, psi1, d0):
        whole = psi1.is_satisfied_by(d0)
        split = all(f.is_satisfied_by(d0) for f in psi1.normalize())
        assert whole == split

    def test_ecfdset_normalize_assigns_stable_cids(self, paper_sigma):
        fragments = paper_sigma.normalize()
        cids = [cid for cid, _ in fragments]
        assert cids == [1, 2, 3]
        assert all(len(f.tableau) == 1 for _, f in fragments)


class TestIsCfd:
    def test_cfd_like_ecfd(self, schema):
        ecfd = ECFD(
            schema,
            ["CT"],
            ["AC"],
            tableau=[({"CT": "Albany"}, {"AC": "518"}), ({"CT": "_"}, {"AC": "_"})],
        )
        assert ecfd.is_cfd()

    def test_disjunction_is_not_cfd(self, psi1, psi2):
        assert not psi1.is_cfd()  # uses a complement set
        assert not psi2.is_cfd()  # uses Yp and a non-singleton set


class TestConstants:
    def test_constants_per_attribute(self, psi1):
        constants = psi1.constants()
        assert constants["CT"] == frozenset({"NYC", "LI", "Albany", "Troy", "Colonie"})
        assert constants["AC"] == frozenset({"518"})

    def test_ecfdset_constants_merge(self, paper_sigma):
        constants = paper_sigma.constants()
        assert "917" in constants["AC"]
        assert "518" in constants["AC"]


class TestECFDSet:
    def test_single_schema_enforced(self, psi1):
        other_schema = RelationSchema("other", ["A", "B"])
        other = ECFD(other_schema, ["A"], ["B"], tableau=[({"A": "_"}, {"B": "_"})])
        sigma = ECFDSet([psi1])
        with pytest.raises(ConstraintError):
            sigma.add(other)

    def test_len_iteration_and_indexing(self, paper_sigma, psi1):
        assert len(paper_sigma) == 2
        assert paper_sigma[0] == psi1
        assert list(paper_sigma)[0] == psi1
        assert paper_sigma.pattern_count() == 3

    def test_empty_set_has_no_schema(self):
        with pytest.raises(ConstraintError):
            ECFDSet().schema

    def test_satisfied_by_single_tuple(self, paper_sigma):
        good = {"AC": "212", "PN": "1", "NM": "x", "STR": "s", "CT": "NYC", "ZIP": "1"}
        bad = {"AC": "100", "PN": "1", "NM": "x", "STR": "s", "CT": "NYC", "ZIP": "1"}
        assert paper_sigma.satisfied_by_single_tuple(good)
        assert not paper_sigma.satisfied_by_single_tuple(bad)

    def test_attributes(self, paper_sigma):
        assert paper_sigma.attributes() == frozenset({"CT", "AC"})
