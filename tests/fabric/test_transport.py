"""Unit tests of the RPC wire layer: framing, retry policy, correlation.

Everything here runs in-process — hand-fed stream readers and throwaway
asyncio servers — so the wire rules (length bounds, EOF classification,
stale/future sequence numbers, poisoning) are pinned without forking a
single worker.
"""

from __future__ import annotations

import asyncio
import pickle
import socket

import pytest

from repro.exceptions import FabricError, RemoteCallError
from repro.parallel import transport as transport_module
from repro.parallel.transport import (
    FrameError,
    RetryPolicy,
    RpcConnection,
    TransportClosed,
    _LENGTH,
    encode_frame,
    idempotent_ops,
    is_idempotent,
    op_spec,
    read_frame,
    registered_ops,
    rpc_op,
)
from repro.parallel.worker import ShardWorker


def _feed(data: bytes) -> asyncio.StreamReader:
    reader = asyncio.StreamReader()
    reader.feed_data(data)
    reader.feed_eof()
    return reader


class TestFraming:
    def test_round_trip_preserves_message_and_counts_wire_bytes(self):
        message = {"op": "bootstrap", "rows": [(1, {"AC": "518"})], "n": 3}

        async def scenario():
            frame = encode_frame(message)
            decoded, wire_bytes = await read_frame(_feed(frame))
            assert decoded == message
            assert wire_bytes == len(frame)

        asyncio.run(scenario())

    def test_oversized_outgoing_frame_is_refused(self, monkeypatch):
        monkeypatch.setattr(transport_module, "MAX_FRAME_BYTES", 16)
        with pytest.raises(FrameError, match="exceeds"):
            encode_frame("x" * 64)

    def test_oversized_incoming_announcement_is_refused_before_allocation(
        self, monkeypatch
    ):
        monkeypatch.setattr(transport_module, "MAX_FRAME_BYTES", 16)

        async def scenario():
            with pytest.raises(FrameError, match="corrupt stream"):
                await read_frame(_feed(_LENGTH.pack(1 << 20)))

        asyncio.run(scenario())

    def test_eof_between_frames_is_transport_closed(self):
        async def scenario():
            with pytest.raises(TransportClosed):
                await read_frame(_feed(b""))

        asyncio.run(scenario())

    def test_eof_mid_frame_is_transport_closed(self):
        async def scenario():
            with pytest.raises(TransportClosed, match="mid-frame"):
                await read_frame(_feed(_LENGTH.pack(100) + b"short"))

        asyncio.run(scenario())

    def test_undecodable_payload_is_frame_error(self):
        garbage = b"\xde\xad\xbe\xef not a pickle"

        async def scenario():
            with pytest.raises(FrameError, match="undecodable"):
                await read_frame(_feed(_LENGTH.pack(len(garbage)) + garbage))

        asyncio.run(scenario())


class TestRetryPolicy:
    def test_delay_schedule_is_exponential_and_capped(self):
        policy = RetryPolicy(attempts=5, base_delay=0.1, factor=2.0, max_delay=0.5)
        assert list(policy.delays()) == [0.1, 0.2, 0.4, 0.5]

    def test_single_attempt_means_no_retry(self):
        assert list(RetryPolicy(attempts=1).delays()) == []

    def test_run_retries_transport_failures_then_succeeds(self):
        slept: list[float] = []

        async def fake_sleep(delay: float) -> None:
            slept.append(delay)

        policy = RetryPolicy(attempts=3, base_delay=0.25, sleep=fake_sleep)
        calls = {"n": 0}

        async def attempt():
            calls["n"] += 1
            if calls["n"] < 3:
                raise TransportClosed("flaky")
            return "done"

        assert asyncio.run(policy.run(attempt)) == "done"
        assert calls["n"] == 3
        assert slept == [0.25, 0.5]

    def test_run_reraises_after_exhaustion(self):
        async def fake_sleep(delay: float) -> None:
            pass

        policy = RetryPolicy(attempts=2, sleep=fake_sleep)

        async def attempt():
            raise ConnectionResetError("gone")

        with pytest.raises(ConnectionResetError):
            asyncio.run(policy.run(attempt))

    def test_remote_call_error_is_never_retried(self):
        policy = RetryPolicy(attempts=5)
        calls = {"n": 0}

        async def attempt():
            calls["n"] += 1
            raise RemoteCallError("ValueError", "bad shard", "trace")

        with pytest.raises(RemoteCallError):
            asyncio.run(policy.run(attempt))
        assert calls["n"] == 1


async def _start_scripted_server(replies_for):
    """A one-connection server whose reply frames come from ``replies_for``."""

    async def handle(reader, writer):
        try:
            while True:
                message, _ = await read_frame(reader)
                for reply in replies_for(message):
                    writer.write(encode_frame(reply))
                await writer.drain()
        except (TransportClosed, FrameError, ConnectionError):
            pass
        finally:
            writer.close()

    server = await asyncio.start_server(handle, "127.0.0.1", 0)
    return server, server.sockets[0].getsockname()[1]


class TestRpcConnection:
    def test_calls_reach_an_in_process_worker(self):
        async def scenario():
            worker = ShardWorker()
            await worker.start()
            connection = await RpcConnection.open("127.0.0.1", worker.port)
            reply = await connection.call("lane-a", "ping", None, 5.0)
            assert reply["pong"] is True
            with pytest.raises(RemoteCallError, match="unknown op"):
                await connection.call("lane-a", "no-such-op", None, 5.0)
            # The operation failed remotely; the connection stays healthy.
            assert connection.healthy
            await connection.close()
            await worker.stop()

        asyncio.run(scenario())

    def test_stale_replies_are_discarded(self):
        def replies_for(message):
            seq, lane, op, payload = message
            # A duplicated/stale frame (seq 0 predates every real call)
            # rides ahead of the genuine reply.
            return [(0, True, "stale"), (seq, True, "fresh")]

        async def scenario():
            server, port = await _start_scripted_server(replies_for)
            connection = await RpcConnection.open("127.0.0.1", port)
            assert await connection.call("lane", "ping", None, 5.0) == "fresh"
            assert await connection.call("lane", "ping", None, 5.0) == "fresh"
            await connection.close()
            server.close()
            await server.wait_closed()

        asyncio.run(scenario())

    def test_future_sequence_severs_the_connection(self):
        def replies_for(message):
            seq, *_ = message
            return [(seq + 10, True, "from the future")]

        async def scenario():
            server, port = await _start_scripted_server(replies_for)
            connection = await RpcConnection.open("127.0.0.1", port)
            with pytest.raises(FrameError, match="future"):
                await connection.call("lane", "ping", None, 5.0)
            assert not connection.healthy
            await connection.close()
            server.close()
            await server.wait_closed()

        asyncio.run(scenario())

    def test_timeout_poisons_the_connection(self):
        def replies_for(message):
            return []  # never answer

        async def scenario():
            server, port = await _start_scripted_server(replies_for)
            connection = await RpcConnection.open("127.0.0.1", port)
            with pytest.raises(asyncio.TimeoutError):
                await connection.call("lane", "ping", None, 0.05)
            assert not connection.healthy
            # A poisoned stream fails fast instead of reading a late reply
            # as the answer to a different call.
            with pytest.raises(TransportClosed, match="poisoned"):
                await connection.call("lane", "ping", None, 0.05)
            await connection.close()
            server.close()
            await server.wait_closed()

        asyncio.run(scenario())

    def test_connect_refused_is_transport_closed(self):
        # Bind-then-close an ephemeral port: nothing listens on it, and no
        # fixed port number can collide with a real service on the runner.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        dead_port = probe.getsockname()[1]
        probe.close()

        async def scenario():
            with pytest.raises(TransportClosed, match="cannot connect"):
                await RpcConnection.open(
                    "127.0.0.1",
                    dead_port,
                    retry=RetryPolicy(attempts=1),
                    connect_timeout=1.0,
                )

        asyncio.run(scenario())

    def test_byte_counters_track_the_wire(self):
        async def scenario():
            worker = ShardWorker()
            await worker.start()
            connection = await RpcConnection.open("127.0.0.1", worker.port)
            await connection.call("lane", "ping", None, 5.0)
            sent = len(encode_frame((1, "lane", "ping", None)))
            assert connection.bytes_sent == sent
            assert connection.bytes_received > 0
            assert connection.calls == 1
            await connection.close()
            await worker.stop()

        asyncio.run(scenario())


class TestWorkerProtocol:
    def test_worker_replies_carry_the_remote_traceback(self):
        async def scenario():
            worker = ShardWorker()
            await worker.start()
            connection = await RpcConnection.open("127.0.0.1", worker.port)
            # state_stats on a key that was never bootstrapped raises
            # worker-side; the classified error crosses the wire whole.
            with pytest.raises(RemoteCallError) as excinfo:
                await connection.call("lane", "state_stats", "no-such-key", 5.0)
            assert excinfo.value.remote_type == "KeyError"
            assert "state_stats" in excinfo.value.remote_traceback
            await connection.close()
            await worker.stop()

        asyncio.run(scenario())

    def test_malformed_frame_ends_the_conversation_not_the_worker(self):
        async def scenario():
            worker = ShardWorker()
            await worker.start()
            reader, writer = await asyncio.open_connection("127.0.0.1", worker.port)
            garbage = b"\x00garbage"
            writer.write(_LENGTH.pack(len(garbage)) + garbage)
            await writer.drain()
            assert await reader.read() == b""  # worker closed this stream
            writer.close()
            # ...but keeps serving fresh connections.
            connection = await RpcConnection.open("127.0.0.1", worker.port)
            assert (await connection.call("lane", "ping", None, 5.0))["pong"]
            await connection.close()
            await worker.stop()

        asyncio.run(scenario())

    def test_shutdown_op_stops_the_worker(self):
        async def scenario():
            worker = ShardWorker()
            await worker.start()
            connection = await RpcConnection.open("127.0.0.1", worker.port)
            assert await connection.call("lane", "shutdown", None, 5.0) is True
            await connection.close()
            await asyncio.wait_for(worker.serve_until_shutdown(), 5.0)

        asyncio.run(scenario())

    def test_frames_are_picklable_by_construction(self):
        # The wire format carries plain tuples/dicts end to end; a frame
        # re-pickled from its decoded form is byte-identical.
        message = (7, "lane:3", "update", ("key", [(1, {"A": "x"})], []))
        frame = encode_frame(message)
        assert pickle.loads(frame[_LENGTH.size:]) == message


@pytest.fixture
def scratch_op():
    """Declare throwaway @rpc_op names; unregisters them on teardown."""
    names: list[str] = []

    def declare(name: str, *, idempotent: bool):
        names.append(name)

        @rpc_op(name, idempotent=idempotent)  # reprolint: disable=RPL002
        def handler(payload):
            return payload

        return handler

    yield declare
    for name in names:
        transport_module._RPC_OPS.pop(name, None)


class TestRpcOpRegistry:
    def test_fabric_ops_are_declared_with_their_retry_contract(self):
        # The one non-idempotent op is the delta application: a retried
        # reply loss would double-apply it.
        assert set(registered_ops()) - idempotent_ops() == {"update", "reduce_summaries"}
        assert is_idempotent("bootstrap")
        assert is_idempotent("detect_shard")
        assert not is_idempotent("update")

    def test_unknown_op_is_never_idempotent(self):
        assert not is_idempotent("no-such-op")
        with pytest.raises(FabricError, match="unknown RPC op"):
            op_spec("no-such-op")

    def test_declaration_tags_the_handler(self, scratch_op):
        handler = scratch_op("test-op-tagged", idempotent=True)
        assert handler.__rpc_op__.name == "test-op-tagged"
        assert handler.__rpc_op__.idempotent
        assert is_idempotent("test-op-tagged")

    def test_same_flag_redeclaration_is_allowed(self, scratch_op):
        # The coordinator-side shard function and the worker-side handler
        # both declare the same op; agreeing declarations share the spec.
        first = scratch_op("test-op-shared", idempotent=True)
        second = scratch_op("test-op-shared", idempotent=True)
        assert first.__rpc_op__ is second.__rpc_op__

    def test_conflicting_redeclaration_raises_at_import_time(self, scratch_op):
        scratch_op("test-op-conflict", idempotent=True)
        with pytest.raises(FabricError, match="conflicting idempotency"):
            scratch_op("test-op-conflict", idempotent=False)

    def test_worker_routing_table_is_derived_from_the_registry(self):
        from repro.parallel.worker import _HANDLERS

        for name, handler in _HANDLERS.items():
            assert handler.__rpc_op__.name == name
            assert name in registered_ops()

    def test_pool_refuses_retryable_submission_of_non_idempotent_op(self):
        from repro.parallel.remote import RemoteWorkerPool

        pool = RemoteWorkerPool(["127.0.0.1:9"])
        with pytest.raises(FabricError, match="not registered idempotent"):
            pool.submit(0, "update", ("key", [], []), retryable=True)  # reprolint: disable=RPL002
        with pytest.raises(FabricError, match="not registered idempotent"):
            pool.submit(0, "no-such-op", None, retryable=True)  # reprolint: disable=RPL002,RPL007
