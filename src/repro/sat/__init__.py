"""Boolean-expression substrate and MAXGSAT solvers (paper Section IV).

The MAXSS approximation algorithm of the paper reduces to Maximum
Generalized Satisfiability; this package provides the expression AST, the
problem representation and a portfolio of exact and approximate solvers.
"""

from repro.sat.expr import (
    FALSE,
    TRUE,
    And,
    Const,
    Expression,
    Not,
    Or,
    Var,
    conjoin,
    disjoin,
    implies_expr,
)
from repro.sat.greedy import solve_greedy
from repro.sat.maxgsat import (
    SOLVERS,
    MaxGSATInstance,
    MaxGSATResult,
    solve_best,
    solve_exact,
    solve_random,
    _register_lazy_solvers,
)
from repro.sat.walksat import solve_walksat

_register_lazy_solvers()

__all__ = [
    "And",
    "Const",
    "Expression",
    "FALSE",
    "MaxGSATInstance",
    "MaxGSATResult",
    "Not",
    "Or",
    "SOLVERS",
    "TRUE",
    "Var",
    "conjoin",
    "disjoin",
    "implies_expr",
    "solve_best",
    "solve_exact",
    "solve_greedy",
    "solve_random",
    "solve_walksat",
]
