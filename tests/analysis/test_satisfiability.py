"""Unit tests for the satisfiability analysis (Proposition 3.1)."""

import pytest

from repro.analysis import (
    active_domains,
    find_witness,
    is_satisfiable,
    is_satisfiable_via_reduction,
    mentioned_attributes,
    witness_or_raise,
)
from repro.core import ECFD, ECFDSet, Relation, cust_schema
from repro.core.ecfd import PatternTuple
from repro.core.patterns import ComplementSet, ValueSet, Wildcard
from repro.core.schema import Attribute, Domain, RelationSchema
from repro.exceptions import UnsatisfiableError


def phi3(schema):
    """The unsatisfiable eCFD of Example 3.1.

    Every tuple is forced to have CT = NYC (second pattern), but any tuple
    with CT = NYC must then have CT = LI (first pattern) — a contradiction,
    so no nonempty instance satisfies the constraint.
    """
    return ECFD(
        schema,
        ["CT"],
        ["CT"],
        tableau=[
            ({"CT": {"NYC"}}, {"CT": {"LI"}}),
            ({"CT": "_"}, {"CT": {"NYC"}}),
        ],
        name="phi3",
    )


class TestActiveDomains:
    def test_constants_plus_fresh(self, psi1, schema):
        domains = active_domains([psi1], schema, fresh_per_attribute=1)
        assert set(domains["CT"]) >= {"NYC", "LI", "Albany", "Troy", "Colonie"}
        # Exactly one extra fresh value beyond the constants.
        assert len(domains["CT"]) == 6
        assert len(domains["AC"]) == 2  # {518} plus one fresh value

    def test_two_fresh_values(self, psi1, schema):
        domains = active_domains([psi1], schema, fresh_per_attribute=2)
        assert len(domains["AC"]) == 3

    def test_finite_domain_cannot_exceed_size(self):
        schema = RelationSchema("r", [Attribute("A", Domain("bool", frozenset(["T", "F"]))), "B"])
        ecfd = ECFD(schema, ["A"], ["B"], tableau=[({"A": {"T"}}, {"B": "_"})])
        domains = active_domains([ecfd], schema, fresh_per_attribute=2)
        assert set(domains["A"]) == {"T", "F"}

    def test_extra_constants_are_included(self, psi1, schema):
        domains = active_domains([psi1], schema, extra_constants={"ZIP": ["12205"]})
        assert "12205" in domains["ZIP"]

    def test_mentioned_attributes_in_schema_order(self, psi1, psi2, schema):
        assert mentioned_attributes([psi1, psi2]) == ["AC", "CT"]
        assert mentioned_attributes([]) == []


class TestSatisfiability:
    def test_paper_sigma_is_satisfiable(self, paper_sigma):
        assert is_satisfiable(paper_sigma)
        witness = find_witness(paper_sigma)
        assert witness is not None
        assert paper_sigma.satisfied_by_single_tuple(witness)

    def test_example_3_1_is_unsatisfiable(self, schema):
        assert not is_satisfiable([phi3(schema)])
        assert find_witness([phi3(schema)]) is None

    def test_witness_populates_whole_schema(self, paper_sigma, schema):
        witness = find_witness(paper_sigma)
        assert set(witness) == set(schema.attribute_names)

    def test_witness_forms_a_satisfying_relation(self, paper_sigma, schema):
        witness = find_witness(paper_sigma)
        relation = Relation(schema, [witness])
        assert paper_sigma.is_satisfied_by(relation)

    def test_empty_set_is_satisfiable(self):
        assert is_satisfiable([])
        assert find_witness([]) is None

    def test_witness_or_raise(self, paper_sigma, schema):
        assert witness_or_raise(paper_sigma) is not None
        with pytest.raises(UnsatisfiableError):
            witness_or_raise([phi3(schema)])

    def test_conflicting_value_sets_unsatisfiable(self, schema):
        """A must be both 1 and 2 whenever it is 1: unsatisfiable only via interplay."""
        force_a = ECFD(
            schema,
            ["CT"],
            [],
            ["AC"],
            tableau=[({"CT": "_"}, {"AC": {"212"}})],
        )
        forbid_a = ECFD(
            schema,
            ["CT"],
            [],
            ["AC"],
            tableau=[({"CT": "_"}, {"AC": ComplementSet(["212"])})],
        )
        assert is_satisfiable([force_a])
        assert is_satisfiable([forbid_a])
        assert not is_satisfiable([force_a, forbid_a])

    def test_complement_needs_fresh_value(self, schema):
        """Satisfiable only by a CT value outside every mentioned constant."""
        ecfd = ECFD(
            schema,
            ["AC"],
            [],
            ["CT"],
            tableau=[({"AC": "_"}, {"CT": ComplementSet(["NYC", "LI", "Albany"])})],
        )
        witness = find_witness([ecfd])
        assert witness is not None
        assert witness["CT"] not in {"NYC", "LI", "Albany"}

    def test_finite_domain_exhaustion_is_unsatisfiable(self):
        """With dom(A)={T,F}, requiring A outside {T,F} is unsatisfiable."""
        schema = RelationSchema("r", [Attribute("A", Domain("bool", frozenset(["T", "F"]))), "B"])
        ecfd = ECFD(
            schema,
            ["B"],
            [],
            ["A"],
            tableau=[({"B": "_"}, {"A": ComplementSet(["T", "F"])})],
        )
        assert not is_satisfiable([ecfd])

    def test_cross_pattern_interaction(self, schema):
        """ψ2 forces NYC area codes; a second eCFD forbids them for NYC ⇒ CT=NYC impossible,
        but other cities remain, so the set is still satisfiable."""
        psi2 = ECFD(
            schema,
            ["CT"],
            [],
            ["AC"],
            tableau=[({"CT": {"NYC"}}, {"AC": ValueSet(["212", "718"])})],
        )
        deny = ECFD(
            schema,
            ["CT"],
            [],
            ["AC"],
            tableau=[({"CT": {"NYC"}}, {"AC": ComplementSet(["212", "718"])})],
        )
        assert is_satisfiable([psi2, deny])
        witness = find_witness([psi2, deny])
        assert witness["CT"] != "NYC"


class TestReductionCrossCheck:
    """The backtracking checker and the MAXGSAT-reduction path must agree."""

    def test_agreement_on_satisfiable_set(self, paper_sigma):
        assert is_satisfiable_via_reduction(paper_sigma) == is_satisfiable(paper_sigma) is True

    def test_agreement_on_unsatisfiable_set(self, schema):
        sigma = [phi3(schema)]
        assert is_satisfiable_via_reduction(sigma) == is_satisfiable(sigma) is False

    def test_agreement_on_empty_set(self):
        assert is_satisfiable_via_reduction([]) is True

    def test_agreement_on_mixed_set(self, schema, psi1, psi2):
        sigma = [psi1, psi2, phi3(schema)]
        assert is_satisfiable(sigma) == is_satisfiable_via_reduction(sigma)
