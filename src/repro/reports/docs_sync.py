"""Self-updating docs: generated tables and committed figure renders.

The hand-written prose in ``README.md`` and ``docs/PERFORMANCE.md`` embeds
machine-generated content between ``<!-- generated: NAME -->`` markers,
and ``docs/figures/`` holds the SVG renders of every registered figure.
Both regenerate *deterministically from committed inputs only* — the
artifact history in ``benchmarks/artifacts/`` and the perf gate's
``benchmarks/baseline.json`` — so :func:`check_stale` can compare bytes:
if a regenerated table or figure differs from what is committed, the docs
have drifted from the data and CI fails with the one command that fixes
it (``python -m repro.reports all``).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.reports.context import DEFAULT_BENCH_DIR, ReportContext, repo_root
from repro.reports.markdown import fmt_number, inject_block, markdown_table
from repro.reports.model import ReportDataError
from repro.reports.registry import select_figures
from repro.reports.render import render_svg
from repro.reports.schema import TRACKED_BENCHMARKS
from repro.reports.trajectory import trajectory_table

__all__ = ["FIGURES_DIR", "generated_blocks", "figure_files", "check_stale", "write_docs"]

#: Where the committed figure renders live, relative to the repo root.
FIGURES_DIR = "docs/figures"


def _tracked_hot_paths_table(root: Path) -> str:
    """Tracked benchmark → description → committed baseline mean."""
    baseline_path = root / "benchmarks" / "baseline.json"
    means: dict[str, float] = {}
    if baseline_path.exists():
        baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
        means = {
            name: float(entry["mean"])
            for name, entry in baseline.get("benchmarks", {}).items()
            if entry.get("mean") is not None
        }
    rows: list[list[object]] = []
    for name, description in TRACKED_BENCHMARKS.items():
        mean = means.get(name)
        rows.append([
            f"`{name}`",
            description,
            round(mean * 1000.0, 2) if mean is not None else "—",
        ])
    return markdown_table(["tracked benchmark", "hot path", "baseline mean (ms)"], rows)


def _cross_engine_block(ctx: ReportContext) -> str:
    """The fig13 cross-engine table from the newest artifact that carries it.

    Core CI jobs never produce fig13 entries (the benchmark needs the
    optional ``duckdb`` extra), so the block regenerates deterministically
    to a placeholder until an ``engines``-job artifact lands in
    ``benchmarks/artifacts/``.
    """
    run = None
    for candidate in reversed(ctx.runs):
        if candidate.parametrized("test_fig13_cross_engine_batch_detect"):
            run = candidate
            break
    if run is None:
        return (
            "_No committed `BENCH_<sha>.json` artifact carries fig13 entries yet — "
            "the cross-engine benchmark only runs in CI's `engines` job (it needs "
            "the optional `duckdb` extra). This table fills in once an engines "
            "artifact is committed to `benchmarks/artifacts/`._"
        )
    rows: list[list[object]] = []
    for entry in run.parametrized("test_fig13_cross_engine_batch_detect"):
        engine = str(entry.extra.get("engine", "")) or "—"
        tuples = entry.number("tuples")
        speedup = entry.number("speedup_vs_sqlite")
        rows.append([
            f"`{engine}`",
            fmt_number(tuples or 0),
            round(entry.mean * 1000.0, 2),
            f"{fmt_number(speedup, 2)}x" if speedup is not None else "—",
        ])
    rows.sort(key=lambda row: (str(row[0]), str(row[1])))
    table = markdown_table(
        ["engine", "|D| (tuples)", "detect mean (ms)", "speedup vs sqlite"], rows
    )
    return table + (
        f"\n\n_From `BENCH_{run.short_sha}.json`; the violation sets are "
        "bit-identical across engines at every point (asserted by the "
        "benchmark itself and by the tests/engines equivalence suite)._"
    )


def _context(root: Path) -> ReportContext:
    return ReportContext.load(bench_dirs=[root / DEFAULT_BENCH_DIR])


def _trajectory_block(ctx: ReportContext) -> str:
    headers, rows = trajectory_table(ctx.runs)
    table = markdown_table(headers, rows)
    note = (
        "_Mean milliseconds per committed `BENCH_<sha>.json` artifact "
        "(`benchmarks/artifacts/`), oldest commit first; — marks commits "
        "before a hot path existed. Sizes: `REPRO_BENCH_SIZE=1000`._"
    )
    return table + "\n\n" + note


def generated_blocks(root: Path | None = None) -> dict[tuple[str, str], str]:
    """(document relpath, block name) → regenerated block content."""
    # The lint rule catalog regenerates from the rule registry, so the
    # documented rules cannot drift from what the pass enforces.
    from repro.lint.registry import rules_table  # noqa: PLC0415

    root = root or repo_root()
    ctx = _context(root)
    trajectory = _trajectory_block(ctx)
    return {
        ("docs/PERFORMANCE.md", "tracked-hot-paths"): _tracked_hot_paths_table(root),
        ("docs/PERFORMANCE.md", "cross-engine"): _cross_engine_block(ctx),
        ("docs/PERFORMANCE.md", "perf-trajectory"): trajectory,
        ("README.md", "perf-trajectory-sample"): trajectory,
        ("docs/LINTING.md", "lint-rules"): rules_table().rstrip("\n"),
    }


def figure_files(root: Path | None = None) -> dict[str, str]:
    """figure filename (under ``docs/figures/``) → regenerated SVG text."""
    root = root or repo_root()
    ctx = _context(root)
    rendered: dict[str, str] = {}
    for spec in select_figures(None):
        try:
            for figure in spec.generator(ctx):
                rendered[f"{figure.name}.svg"] = render_svg(figure)
        except ReportDataError:
            # The committed history cannot feed this figure (yet) — it
            # simply has no committed render to keep fresh.
            continue
    return rendered


def check_stale(root: Path | None = None) -> list[str]:
    """Everything whose committed form differs from regeneration.

    Returns human-readable problem lines (empty = docs are fresh).  Each
    problem names the file; the fix is always the same one command.
    """
    root = root or repo_root()
    problems: list[str] = []

    from repro.reports.markdown import extract_block  # noqa: PLC0415

    for (relpath, name), fresh in generated_blocks(root).items():
        path = root / relpath
        if not path.exists():
            problems.append(f"{relpath}: file missing (carries generated block {name!r})")
            continue
        committed = extract_block(path.read_text(encoding="utf-8"), name)
        if committed is None:
            problems.append(f"{relpath}: generated block {name!r} markers missing")
        elif committed.rstrip("\n") != fresh.rstrip("\n"):
            problems.append(f"{relpath}: generated block {name!r} is stale")

    fresh_figures = figure_files(root)
    figures_dir = root / FIGURES_DIR
    for filename, fresh in fresh_figures.items():
        path = figures_dir / filename
        if not path.exists():
            problems.append(f"{FIGURES_DIR}/{filename}: committed render missing")
        elif path.read_text(encoding="utf-8") != fresh:
            problems.append(f"{FIGURES_DIR}/{filename}: committed render is stale")
    if figures_dir.is_dir():
        for path in sorted(figures_dir.glob("*.svg")):
            if path.name not in fresh_figures:
                problems.append(
                    f"{FIGURES_DIR}/{path.name}: no registered figure produces this file"
                )

    if problems:
        problems.append(
            "regenerate with: PYTHONPATH=src python -m repro.reports all"
        )
    return problems


def write_docs(root: Path | None = None) -> list[str]:
    """Rewrite every generated block and figure render; returns changed paths."""
    root = root or repo_root()
    changed: list[str] = []

    for (relpath, name), fresh in generated_blocks(root).items():
        path = root / relpath
        text = path.read_text(encoding="utf-8")
        updated = inject_block(text, name, fresh)
        if updated != text:
            path.write_text(updated, encoding="utf-8")
            changed.append(relpath)

    figures_dir = root / FIGURES_DIR
    figures_dir.mkdir(parents=True, exist_ok=True)
    for filename, fresh in figure_files(root).items():
        path = figures_dir / filename
        if not path.exists() or path.read_text(encoding="utf-8") != fresh:
            path.write_text(fresh, encoding="utf-8")
            changed.append(f"{FIGURES_DIR}/{filename}")
    return changed
