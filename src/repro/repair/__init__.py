"""Value-modification repair of eCFD violations (paper future work, Section VIII).

The subsystem is violation-driven and layered like detection:

* :mod:`repro.repair.cost` — the cell-change audit primitives
  (:class:`CellChange`, :class:`RepairCostModel`);
* :mod:`repro.repair.fixes` — :class:`FixPlanner`, the deterministic
  per-round fix derivation every strategy shares (flags in, cell changes
  out), and the :func:`elect_rhs` majority election;
* :mod:`repro.repair.repairer` — :class:`GreedyRepairer`, the standalone
  relation-level baseline (full re-detection per round);
* :mod:`repro.repair.strategies` — the :class:`RepairStrategy` registry the
  engine routes :meth:`~repro.engine.DataQualityEngine.repair` through:
  ``"greedy"``, ``"incremental"`` (INCDETECT delta re-validation) and —
  registered from :mod:`repro.parallel.repair` — ``"sharded"``
  (summary-elected group fixes over routed shard deltas).
"""

from repro.repair.cost import CellChange, RepairCostModel
from repro.repair.fixes import FixPlanner, RoundPlan, elect_rhs
from repro.repair.repairer import GreedyRepairer, RepairOutcome
from repro.repair.strategies import (
    GreedyRepairStrategy,
    IncrementalRepairStrategy,
    RepairStrategy,
    available_strategies,
    create_strategy,
    register_strategy,
    resolve_strategy_factory,
    unregister_strategy,
)

__all__ = [
    "CellChange",
    "FixPlanner",
    "GreedyRepairStrategy",
    "GreedyRepairer",
    "IncrementalRepairStrategy",
    "RepairCostModel",
    "RepairOutcome",
    "RepairStrategy",
    "RoundPlan",
    "available_strategies",
    "create_strategy",
    "elect_rhs",
    "register_strategy",
    "resolve_strategy_factory",
    "unregister_strategy",
]
