"""The engine subsystem: one façade over detection, repair and discovery.

* :mod:`repro.engine.facade` — :class:`DataQualityEngine`, the unified
  lifecycle (validate → load → detect → update → repair → report);
* :mod:`repro.engine.backends` — the :class:`DetectorBackend` interface,
  adapters for the three paper detectors and the string-keyed backend
  registry future storage strategies plug into;
* :mod:`repro.engine.results` — structured, serializable result objects
  (:class:`DetectionResult`, :class:`RepairResult`, :class:`QualityReport`).

Repair routes through the strategy registry of
:mod:`repro.repair.strategies` exactly like detection routes through the
backend registry — ``engine.repair(strategy="greedy" | "incremental" |
"sharded")``, with the default picked from the backend's capabilities.
"""

from repro.engine.backends import (
    BatchBackend,
    DetectorBackend,
    IncrementalBackend,
    NaiveBackend,
    available_backends,
    create_backend,
    register_backend,
    unregister_backend,
)
from repro.engine.facade import DEFAULT_CHUNK_SIZE, DataQualityEngine
from repro.engine.results import DetectionResult, QualityReport, RepairResult

# Importing the parallel subsystem registers the "sharded" backend in the
# registry above, so name-based lookups (and the façade's workers > 1
# routing) work as soon as the engine package is imported.
from repro.parallel.sharded import ShardedBackend

__all__ = [
    "BatchBackend",
    "ShardedBackend",
    "DEFAULT_CHUNK_SIZE",
    "DataQualityEngine",
    "DetectionResult",
    "DetectorBackend",
    "IncrementalBackend",
    "NaiveBackend",
    "QualityReport",
    "RepairResult",
    "available_backends",
    "create_backend",
    "register_backend",
    "unregister_backend",
]
