"""The rule catalog: one :class:`~repro.lint.model.Rule` per RPL code.

This registry is the single source for everything rule-shaped: the
checkers key their violations off these codes, ``--list-rules`` prints
them, and the generated table in ``docs/LINTING.md`` is rendered from
:func:`rules_table` (via :mod:`repro.reports.docs_sync`), so the docs
cannot drift from the codes the pass actually enforces.
"""

from __future__ import annotations

from repro.lint.model import Rule

__all__ = ["RULES", "rules_table"]

RULES: dict[str, Rule] = {
    rule.code: rule
    for rule in (
        Rule(
            code="RPL001",
            name="wire-safety",
            summary=(
                "RPC payloads and shard tasks must be plain picklable data: "
                "no lambdas, closures, or bound methods cross the wire, and "
                "summary wire shapes are built only by detection/summaries.py"
            ),
            rationale=(
                "The remote fabric pickles every payload; a closure that "
                "happens to pickle in-process breaks on a real network "
                "boundary, and ad-hoc summary tuples fork the wire format "
                "the reduce stage depends on."
            ),
        ),
        Rule(
            code="RPL002",
            name="retry-idempotency",
            summary=(
                "retryable=True submissions must name an op declared "
                "@rpc_op(idempotent=True); retry intent is never free-form"
            ),
            rationale=(
                "A retry of a non-idempotent op (an update delta) after a "
                "lost reply double-applies its effect and silently breaks "
                "the bit-exact equivalence anchor."
            ),
        ),
        Rule(
            code="RPL003",
            name="determinism",
            summary=(
                "engine paths use no wall clocks or unseeded randomness, and "
                "never iterate a set without sorted() where order can leak"
            ),
            rationale=(
                "Serial/thread/process/remote executors must produce "
                "bit-identical violations and repairs; one unordered set "
                "iteration in a tie-break makes equivalence flaky."
            ),
        ),
        Rule(
            code="RPL004",
            name="asyncio-hygiene",
            summary=(
                "no blocking calls in async def bodies, no un-awaited "
                "coroutines, no fire-and-forget create_task"
            ),
            rationale=(
                "One time.sleep in the worker's event loop stalls every "
                "lane at once, and an unretained task is garbage-collected "
                "mid-flight with its exception swallowed."
            ),
        ),
        Rule(
            code="RPL005",
            name="engine-affinity",
            summary=(
                "DB drivers (sqlite3, duckdb) stay confined to "
                "detection/engines/ and connections are never captured "
                "into closures that may cross executor threads"
            ),
            rationale=(
                "Engine connections are thread-affine; the fabric "
                "guarantees this by pinning each shard state to one lane "
                "thread, which only holds if no connection escapes the "
                "sanctioned engine modules."
            ),
        ),
        Rule(
            code="RPL006",
            name="exception-taxonomy",
            summary=(
                "project exceptions subclass ReproError, and every "
                "`except Exception` carries a `# noqa: BLE001 - <reason>`"
            ),
            rationale=(
                "Callers dispatch on the ReproError hierarchy; an orphan "
                "exception class or an unexplained blanket except hides "
                "faults the chaos tests are designed to surface."
            ),
        ),
        Rule(
            code="RPL007",
            name="registry-consistency",
            summary=(
                "string keys (backends, strategies, figures, drivers, RPC "
                "ops, tracked benchmarks) resolve against their registries "
                "with no duplicates or orphans"
            ),
            rationale=(
                "Registries are stringly-typed on purpose (wire and CLI "
                "friendly); the compensation is a static cross-check so a "
                "typo fails the lint gate, not a production run."
            ),
        ),
    )
}


def rules_table() -> str:
    """The markdown rule table injected into ``docs/LINTING.md``."""
    lines = [
        "| Code | Name | Checks |",
        "| --- | --- | --- |",
    ]
    for code in sorted(RULES):
        rule = RULES[code]
        lines.append(f"| `{rule.code}` | {rule.name} | {rule.summary} |")
    return "\n".join(lines) + "\n"
