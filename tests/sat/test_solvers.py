"""Unit tests for the MAXGSAT solvers (exact, random, greedy, walksat, best)."""

import pytest

from repro.sat import (
    SOLVERS,
    MaxGSATInstance,
    Not,
    Or,
    And,
    Var,
    solve_best,
    solve_exact,
    solve_greedy,
    solve_random,
    solve_walksat,
)


def _satisfiable_instance() -> MaxGSATInstance:
    """Three expressions, all simultaneously satisfiable (x=T, y=F, z=T)."""
    x, y, z = Var("x"), Var("y"), Var("z")
    return MaxGSATInstance([Or([x, y]), And([x, Not(y)]), Or([z, y])])


def _conflicting_instance() -> MaxGSATInstance:
    """x and ¬x can never both hold: optimum is 2 of 3."""
    x, y = Var("x"), Var("y")
    return MaxGSATInstance([x, Not(x), Var("y") | y])


ALL_SOLVERS = [solve_exact, solve_random, solve_greedy, solve_walksat, solve_best]


class TestInstance:
    def test_variables_sorted(self):
        instance = _satisfiable_instance()
        assert instance.variables() == ["x", "y", "z"]
        assert instance.size == 3

    def test_score_and_satisfied_indices(self):
        instance = _conflicting_instance()
        assert instance.score({"x": True, "y": True}) == 2
        assert instance.satisfied_indices({"x": True, "y": True}) == frozenset({0, 2})


class TestExactSolver:
    def test_finds_full_satisfaction(self):
        result = solve_exact(_satisfiable_instance())
        assert result.score == 3
        assert result.assignment["x"] is True

    def test_finds_optimum_on_conflict(self):
        result = solve_exact(_conflicting_instance())
        assert result.score == 2

    def test_refuses_huge_instances(self):
        instance = MaxGSATInstance([Var(f"v{i}") for i in range(30)])
        with pytest.raises(ValueError):
            solve_exact(instance)

    def test_variable_limit_is_adjustable(self):
        instance = MaxGSATInstance([Var(f"v{i}") for i in range(5)])
        with pytest.raises(ValueError):
            solve_exact(instance, max_variables=3)
        # ... and raising the limit lets the search run.
        assert solve_exact(instance, max_variables=5).score == 5

    def test_empty_instance(self):
        result = solve_exact(MaxGSATInstance([]))
        assert result.score == 0
        assert result.assignment == {}


class TestApproximateSolvers:
    @pytest.mark.parametrize("solver", ALL_SOLVERS)
    def test_solvers_find_satisfiable_instance(self, solver):
        result = solver(_satisfiable_instance())
        assert result.score == 3

    @pytest.mark.parametrize("solver", ALL_SOLVERS)
    def test_solvers_return_feasible_results(self, solver):
        """The reported satisfied set must match re-evaluation of the assignment."""
        instance = _conflicting_instance()
        result = solver(instance)
        assert result.satisfied == instance.satisfied_indices(result.assignment)
        assert 0 <= result.score <= instance.size

    def test_walksat_deterministic_for_fixed_seed(self):
        instance = _conflicting_instance()
        first = solve_walksat(instance, seed=7)
        second = solve_walksat(instance, seed=7)
        assert first.assignment == second.assignment

    def test_random_deterministic_for_fixed_seed(self):
        instance = _satisfiable_instance()
        assert solve_random(instance, seed=3).assignment == solve_random(instance, seed=3).assignment

    def test_best_matches_exact_on_small_instances(self):
        for instance in [_satisfiable_instance(), _conflicting_instance()]:
            assert solve_best(instance).score == solve_exact(instance).score

    def test_greedy_on_chained_implications(self):
        """Greedy should satisfy a consistent implication chain completely."""
        a, b, c = Var("a"), Var("b"), Var("c")
        instance = MaxGSATInstance([a, Or([Not(a), b]), Or([Not(b), c])])
        assert solve_greedy(instance).score == 3

    def test_walksat_empty_variables(self):
        instance = MaxGSATInstance([And([])])
        assert solve_walksat(instance).score == 1


class TestRegistry:
    def test_all_solvers_registered(self):
        assert {"exact", "random", "greedy", "walksat", "best"} <= set(SOLVERS)

    def test_registry_entries_callable(self):
        instance = _satisfiable_instance()
        for name, solver in SOLVERS.items():
            result = solver(instance)
            assert result.score <= instance.size, name
