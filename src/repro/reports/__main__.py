"""Entry point for ``python -m repro.reports``."""

from repro.reports.cli import main

raise SystemExit(main())
