"""BATCHDETECT — batch detection of eCFD violations (Section V-A).

Given a database D (already loaded into an :class:`ECFDDatabase`) and a set
Σ of eCFDs, the batch algorithm:

1. encodes Σ into the ``enc`` / constant tables (once, via
   :mod:`repro.detection.encoding`);
2. runs ``Q_sv`` and sets ``SV = 1`` on the returned tuples — the
   single-tuple pattern-constraint violations;
3. runs the ``macro`` query, materialises it into the helper relation
   ``ecfd_macro``, derives the violating ``(cid, p)`` groups into the
   auxiliary relation ``ecfd_aux`` (the paper's Aux(D), i.e. the ``Q_mv``
   result) and sets ``MV = 1`` on every tuple belonging to one of those
   groups — the multiple-tuple embedded-FD violations.

Both auxiliary relations are kept in the database because they double as
the starting state of the incremental algorithm: the paper initialises
Aux(D) with exactly the ``Q_mv`` result, and the materialised macro rows are
what make the incremental maintenance index-driven (see
:mod:`repro.detection.sqlgen`).

Everything is plain SQL executed by the engine: the Python code only
stitches the fixed statements together, independent of how many eCFDs are
in Σ.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.ecfd import ECFD, ECFDSet
from repro.core.violations import ViolationSet
from repro.detection.database import ECFDDatabase
from repro.detection.encoding import (
    AUX_TABLE,
    MACRO_TABLE,
    ConstraintEncoding,
    encode_constraints,
    install_encoding,
)
from repro.detection.sqlgen import (
    aux_columns,
    group_query,
    macro_query,
    mv_set_statement,
    summary_scan_query,
    sv_update_statement,
)
from repro.detection.summaries import Summary, accumulate_group

__all__ = ["BatchDetector"]


class BatchDetector:
    """The BATCHDETECT algorithm.

    Parameters
    ----------
    database:
        The engine-backed data store (already loaded with the relation).
    sigma:
        The eCFDs to check.  They are encoded into the database's auxiliary
        tables when the detector is constructed.
    """

    def __init__(self, database: ECFDDatabase, sigma: ECFDSet | Sequence[ECFD]):
        self.database = database
        self.sigma = sigma if isinstance(sigma, ECFDSet) else ECFDSet(list(sigma))
        self.encoding: ConstraintEncoding = encode_constraints(self.sigma)
        install_encoding(database, self.encoding)
        self._create_auxiliary_tables()

    # ------------------------------------------------------------------
    # Auxiliary relation DDL
    # ------------------------------------------------------------------
    def _create_auxiliary_tables(self) -> None:
        schema = self.database.schema
        dialect = self.database.dialect
        quote = dialect.quote_identifier
        text = dialect.text_type
        integer = dialect.integer_type
        value_columns = [
            f"{quote(name)} {text} NOT NULL" for name in aux_columns(schema)
        ]

        self.database.execute(dialect.drop_table(AUX_TABLE))
        self.database.execute(
            f"CREATE TABLE {quote(AUX_TABLE)} ("
            f"cid {integer} NOT NULL, {', '.join(value_columns)}, "
            f"xv_key {text} NOT NULL)"
        )

        self.database.execute(dialect.drop_table(MACRO_TABLE))
        self.database.execute(
            f"CREATE TABLE {quote(MACRO_TABLE)} ("
            f"cid {integer} NOT NULL, tid {integer} NOT NULL, "
            f"{', '.join(value_columns)}, "
            f"xv_key {text} NOT NULL, yv_key {text} NOT NULL)"
        )

        # Index DDL is dialect-advised: the row store wants the group-key
        # and tid indexes; a columnar engine declines them (returns None).
        for name, table, columns in (
            ("idx_" + AUX_TABLE + "_key", AUX_TABLE, ["cid", "xv_key"]),
            ("idx_" + MACRO_TABLE + "_key", MACRO_TABLE, ["cid", "xv_key"]),
            ("idx_" + MACRO_TABLE + "_tid", MACRO_TABLE, ["tid"]),
        ):
            ddl = dialect.create_index(name, table, columns)
            if ddl is not None:
                self.database.execute(ddl)
        self.database.commit()

    # ------------------------------------------------------------------
    # Detection
    # ------------------------------------------------------------------
    def detect(self) -> ViolationSet:
        """Run BATCHDETECT and return the violation set of the whole table.

        The SV / MV flags in the data table and both auxiliary relations are
        (re)computed from scratch.
        """
        schema = self.database.schema
        dialect = self.database.dialect
        quote = dialect.quote_identifier
        self.database.reset_flags()

        # Single-tuple violations (Q_sv).
        self.database.execute(sv_update_statement(schema, dialect=dialect))

        # Multiple-tuple violations: materialise macro, derive Aux(D), flag MV.
        macro_columns = (
            ["cid", "tid"]
            + [quote(name) for name in aux_columns(schema)]
            + ["xv_key", "yv_key"]
        )
        self.database.execute(f"DELETE FROM {quote(MACRO_TABLE)}")
        self.database.execute(
            f"INSERT INTO {quote(MACRO_TABLE)} ({', '.join(macro_columns)})\n"
            f"{macro_query(schema, dialect=dialect)}"
        )

        aux_insert_columns = (
            ["cid"] + [quote(name) for name in aux_columns(schema)] + ["xv_key"]
        )
        self.database.execute(f"DELETE FROM {quote(AUX_TABLE)}")
        self.database.execute(
            f"INSERT INTO {quote(AUX_TABLE)} ({', '.join(aux_insert_columns)})\n"
            f"{group_query(schema, quote(MACRO_TABLE), dialect=dialect)}"
        )

        self.database.execute(mv_set_statement(schema, MACRO_TABLE, AUX_TABLE, dialect=dialect))
        self.database.commit()
        return self.database.violations()

    # ------------------------------------------------------------------
    # Group-summary emission (single-pass sharding)
    # ------------------------------------------------------------------
    def fd_group_summary(self, fragments: Sequence[tuple[int, ECFD]]) -> Summary:
        """Embedded-FD group summaries of the stored data, pushed into SQL.

        The shard-side emission hook of single-pass sharded detection (see
        :mod:`repro.detection.summaries`): per fragment, one parameterised
        scan (:func:`~repro.detection.sqlgen.summary_scan_query`) filters
        the LHS-matching tuples inside the engine and Python folds the returned
        projections into ``(cid, xv) → (yv multiset, tids)`` groups.
        Bounded output — aggregated groups, never raw rows.
        """
        summary: Summary = {}
        for cid, fragment in fragments:
            sql, parameters = summary_scan_query(fragment, dialect=self.database.dialect)
            groups: dict = {}
            split = 1 + len(fragment.lhs)
            for row in self.database.query(sql, parameters):
                accumulate_group(
                    groups, tuple(row[1:split]), tuple(row[split:]), row[0]
                )
            summary[cid] = groups
        return summary

    # ------------------------------------------------------------------
    # Introspection helpers (used by tests, examples and the experiments)
    # ------------------------------------------------------------------
    def aux_rows(self) -> list[tuple]:
        """The current contents of the auxiliary relation (``(cid, p)`` rows)."""
        quote = self.database.dialect.quote_identifier
        columns = ["cid"] + [quote(name) for name in aux_columns(self.database.schema)]
        return self.database.query(
            f"SELECT {', '.join(columns)} FROM {quote(AUX_TABLE)} ORDER BY cid"
        )

    def violation_counts(self) -> dict[str, int]:
        """SV / MV / dirty row counts (the Fig. 7(b) series)."""
        return self.database.flag_counts()
