"""Randomized strategy × executor × workers repair equivalence.

Every repair strategy plans its fixes with the shared
:class:`~repro.repair.fixes.FixPlanner`, so for the same data and Σ they
must all produce the *same* clean relation and the *same* cell-change cost
accounting — strategies differ in how they re-validate (full re-detection
vs. INCDETECT deltas vs. routed shard deltas with summary-elected group
fixes), never in outcome.  These tests stress that guarantee in the style of
``tests/parallel/test_summary_merge.py``: randomly structured constraint
sets (overlapping / disjoint / empty LHS sets, value-set and complement-set
patterns, pattern-only riders) over small-domain data, repaired under every
strategy × executor × workers combination and compared bit-for-bit against
the single-threaded greedy baseline.  Greedy repair is not guaranteed to
converge for every random constraint interaction; when the baseline raises
:class:`~repro.exceptions.RepairError`, every other combination must raise
too — divergence in *failure* would be just as much of a semantics bug.
"""

import random

import pytest

from repro.core.schema import cust_ext_schema
from repro.datagen import DatasetGenerator, paper_workload
from repro.engine import DataQualityEngine
from repro.exceptions import RepairError
from tests.parallel.test_summary_merge import _random_rows, _random_sigma

SCHEMA = cust_ext_schema()
MAX_ROUNDS = 25

#: (strategy, backend, workers, executor) combinations swept per seed; the
#: first entry is the single-threaded greedy baseline everything else is
#: compared against.
COMBOS = [
    ("greedy", "naive", 1, "serial"),
    ("greedy", "batch", 1, "serial"),
    ("incremental", "incremental", 1, "serial"),
    ("incremental", "incremental", 3, "serial"),
    ("sharded", "incremental", 3, "serial"),
    ("sharded", "incremental", 4, "thread"),
]


def _repair_snapshot(sigma, rows, strategy, backend, workers, executor):
    """Run one engine repair; returns (relation cells, cost, change count)."""
    engine = DataQualityEngine(
        SCHEMA, sigma, backend=backend, workers=workers, executor=executor
    )
    try:
        engine.load(rows)
        result = engine.repair(strategy=strategy, max_rounds=MAX_ROUNDS)
        assert result.clean
        assert engine.violation_counts()["dirty"] == 0
        cells = {
            t.tid: t.values() for t in engine.to_relation().tuples()
        }
        return cells, result.cost, result.cells_changed, result.trace
    finally:
        engine.close()


class TestRandomizedRepairEquivalence:
    @pytest.mark.parametrize("seed", range(4))
    def test_all_combinations_match_greedy_baseline(self, seed):
        rng = random.Random(4000 + seed)
        sigma = _random_sigma(rng)
        rows = _random_rows(rng, 180)

        baseline_error = None
        baseline = None
        try:
            baseline = _repair_snapshot(sigma, rows, *COMBOS[0])
        except RepairError as error:
            baseline_error = error
        for strategy, backend, workers, executor in COMBOS[1:]:
            if baseline_error is not None:
                with pytest.raises(RepairError):
                    _repair_snapshot(sigma, rows, strategy, backend, workers, executor)
                continue
            cells, cost, changed, trace = _repair_snapshot(
                sigma, rows, strategy, backend, workers, executor
            )
            assert cells == baseline[0], (
                f"{strategy}/{backend}/workers={workers}/{executor} diverged "
                f"from the greedy baseline on seed {seed}"
            )
            assert cost == baseline[1]
            assert changed == baseline[2]
            if strategy != "greedy":
                # Delta re-validation all the way: no full re-detections.
                assert trace["full_detects"] == 0

    def test_single_shard_workload_identical_accounting(self):
        """All strategies at workers=1 on the paper workload (single shard)."""
        sigma = paper_workload(SCHEMA)
        rows = DatasetGenerator(seed=11).generate_rows(300, 6.0)
        snapshots = {}
        for strategy, backend in (
            ("greedy", "naive"),
            ("greedy", "batch"),
            ("incremental", "incremental"),
        ):
            snapshots[(strategy, backend)] = _repair_snapshot(
                sigma, rows, strategy, backend, 1, "serial"
            )
        reference = snapshots[("greedy", "naive")]
        for key, snapshot in snapshots.items():
            assert snapshot[0] == reference[0], f"{key} relation diverged"
            assert snapshot[1:3] == reference[1:3], f"{key} cost accounting diverged"


class TestPaperWorkloadShardedBitExactness:
    def test_sharded_workers4_matches_single_threaded_greedy(self):
        """The acceptance check: bit-exact clean relation at workers=4."""
        sigma = paper_workload(SCHEMA)
        rows = DatasetGenerator(seed=0).generate_rows(800, 5.0)

        baseline = _repair_snapshot(sigma, rows, "greedy", "batch", 1, "serial")

        engine = DataQualityEngine(
            SCHEMA, sigma, backend="incremental", workers=4, executor="process"
        )
        try:
            engine.load(rows)
            result = engine.repair(max_rounds=MAX_ROUNDS)
            assert result.strategy == "sharded"
            assert result.clean
            # Zero full re-detections after the bootstrap seeding scan.
            assert result.trace["full_detects"] == 0
            assert engine.backend.full_detect_count == 0
            assert result.trace["summary_groups_repaired"] > 0
            cells = {t.tid: t.values() for t in engine.to_relation().tuples()}
            assert cells == baseline[0]
            assert result.cost == baseline[1]
            assert result.cells_changed == baseline[2]
        finally:
            engine.close()
