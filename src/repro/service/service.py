"""The always-on quality service: a streaming front end over the engine.

:class:`QualityService` turns the one-shot :class:`~repro.engine.DataQualityEngine`
lifecycle into a long-running subsystem: many concurrent clients submit
update streams, the violation set is *maintained* continuously through the
sharded INCDETECT lanes, and ``detect`` / ``breakdown`` / ``repair`` /
``stats`` queries answer from the live merged state without re-detection.

Data flow (one hop per stage)::

    client submit ──► admission control ──► delta coalescer ──► pump
                                                                 │
          live merged state ◄── routed lanes ◄── pipelined batches

* **admission** (:class:`~repro.service.admission.AdmissionController`)
  bounds the raw operations admitted but not yet shipped, parking fast
  producers in back-pressure;
* **coalescing** (:class:`~repro.service.coalescer.DeltaCoalescer`) nets
  out same-tid churn and assigns insert identifiers with the backend's own
  discipline, so clients learn their tids at submit time;
* the single **pump** task drains whatever accumulated while the previous
  ship was in flight and ships it as one ``incremental_update_many`` call —
  capped batches, pipelined through the shard lanes, one barrier per
  window.  All engine access (ships *and* queries) is serialised through a
  one-worker executor, so the asyncio loop never blocks on engine work and
  the engine never sees two calls at once.

Every submission returns the assigned tids plus an ``applied`` future that
resolves when the submission's window has been shipped — the hook the
fig11 benchmark hangs its per-update latency measurement on, and the
barrier queries use to read state no older than any earlier submission.

The correctness anchor (asserted by the equivalence tests): after any
coalesced, batched, concurrent-client stream, the maintained violation
state is bit-exact with a single-threaded ``apply_update`` replay of the
raw stream — coalescing preserves tid assignment and final relation, and
the flags are a function of both.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from collections.abc import Mapping, Sequence

from repro.core.ecfd import ECFD, ECFDSet
from repro.core.schema import RelationSchema, Value
from repro.engine.facade import DataQualityEngine
from repro.exceptions import EngineError
from repro.service.admission import AdmissionController
from repro.service.coalescer import DeltaCoalescer

__all__ = ["QualityService", "SubmitReceipt"]


@dataclass
class SubmitReceipt:
    """What a producer gets back from :meth:`QualityService.submit`.

    ``tids`` are the identifiers assigned to the submitted inserts (known
    immediately — assignment happens at admission, not at shipment);
    ``applied`` resolves to the event-loop timestamp at which the
    submission's window finished shipping to the lanes.
    """

    tids: list[int] = field(default_factory=list)
    applied: "asyncio.Future[float]" = None  # type: ignore[assignment]

    async def wait_applied(self) -> float:
        """Block until the submission is live in the maintained state."""
        return await self.applied


class QualityService:
    """An asyncio always-on data-quality service over a sharded engine.

    Parameters
    ----------
    schema / sigma:
        As for :class:`~repro.engine.DataQualityEngine`.
    backend / workers / executor:
        Engine configuration; the resolved backend must support
        incremental updates (the service maintains state, never
        recomputes), so ``backend`` defaults to ``"incremental"`` — with
        ``workers > 1`` that is sharded INCDETECT over per-shard lanes.
        ``executor="remote"`` puts the lanes on standalone worker
        processes (the remote shard fabric) — the service front end is
        unchanged; only where the lane work runs moves off-host.
    remote_workers / rpc_timeout:
        Worker fleet and per-call deadline for ``executor="remote"``
        (see :class:`~repro.parallel.ShardedBackend`); ignored otherwise.
    max_batch:
        Cap on operations per routed batch shipped to the lanes (the
        coalescer's flush chunk size); ``None`` ships each window whole.
    queue_capacity:
        Admission bound on raw operations admitted but not yet shipped.

    Lifecycle: ``await start(rows)`` loads the base data, bootstraps the
    maintained state and starts the pump; ``await stop()`` drains pending
    work and shuts everything down.  Also usable as an async context
    manager (``async with QualityService(...) as service``), loading no
    base rows.
    """

    def __init__(
        self,
        schema: RelationSchema,
        sigma: ECFDSet | Sequence[ECFD],
        backend: str = "incremental",
        workers: int = 1,
        executor: str = "thread",
        max_batch: int | None = 256,
        queue_capacity: int = 1024,
        remote_workers: object = None,
        rpc_timeout: float = 30.0,
    ):
        self._lane: ThreadPoolExecutor | None = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="quality-service-engine"
        )
        engine_kwargs: dict = {"backend": backend, "workers": workers, "executor": executor}
        if executor == "remote":
            engine_kwargs["remote_workers"] = remote_workers
            engine_kwargs["rpc_timeout"] = rpc_timeout
        # SQLite-backed delegates are bound to their creating thread, so
        # the engine is built on the lane every later call runs on.
        self.engine = self._lane.submit(
            lambda: DataQualityEngine(schema, sigma, **engine_kwargs)
        ).result()
        if not self.engine.backend.supports_incremental:
            self._lane.submit(self.engine.close).result()
            self._lane.shutdown()
            self._lane = None
            raise EngineError(
                f"the quality service maintains violations incrementally; "
                f"backend {backend!r} does not support incremental updates"
            )
        self.max_batch = max_batch
        self.admission = AdmissionController(queue_capacity)
        self.coalescer = DeltaCoalescer()
        self._pump_task: asyncio.Task | None = None
        self._wake: asyncio.Event | None = None
        self._window: list[tuple[asyncio.Future, int]] = []
        self._started = False
        self._closing = False
        # --- service counters ---
        self.ships = 0
        self.shipped_batches = 0
        self.submissions = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def _run_engine(self, fn, *args):
        """Run blocking engine work on the single engine lane."""
        assert self._lane is not None
        return await asyncio.get_running_loop().run_in_executor(self._lane, fn, *args)

    async def start(self, rows: Sequence[Mapping[str, Value]] = ()) -> None:
        """Load the base data, bootstrap the maintained state, start the pump."""
        if self._started:
            raise EngineError("the quality service is already running")
        if self._lane is None:
            raise EngineError("a stopped quality service cannot be restarted")
        self._wake = asyncio.Event()
        if rows:
            await self._run_engine(self.engine.load, list(rows))
        # Bootstrap outside any timed/streamed path: the per-shard INCDETECT
        # states come up now, so the first submission pays routing only.
        await self._run_engine(self.engine.backend.ensure_ready)
        self.coalescer = DeltaCoalescer(await self._run_engine(self.engine.tids))
        self._closing = False
        self._pump_task = asyncio.create_task(self._pump(), name="quality-service-pump")
        self._started = True

    async def stop(self) -> None:
        """Drain pending work, stop the pump and release the engine."""
        if not self._started:
            return
        self._closing = True
        assert self._wake is not None and self._pump_task is not None
        self._wake.set()
        await self._pump_task
        await self._run_engine(self.engine.close)
        assert self._lane is not None
        self._lane.shutdown()
        self._lane = None
        self._pump_task = None
        self._started = False

    async def __aenter__(self) -> "QualityService":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    def _require_running(self) -> None:
        if not self._started or self._closing:
            raise EngineError("the quality service is not running")

    # ------------------------------------------------------------------
    # Streaming front end
    # ------------------------------------------------------------------
    async def submit(
        self,
        delete_tids: Sequence[int] = (),
        insert_rows: Sequence[Mapping[str, Value]] = (),
    ) -> SubmitReceipt:
        """Admit one raw update event into the current window.

        Waits in back-pressure when the queue-depth bound is hit; returns
        immediately afterwards with the assigned insert tids and the
        ``applied`` future of the event's window.
        """
        self._require_running()
        ops = len(delete_tids) + len(insert_rows)
        await self.admission.acquire(ops)
        # Assignment is synchronous with admission (no await between), so
        # concurrent producers see a consistent tid sequence: submission
        # order *is* replay order.
        assigned = self.coalescer.add(delete_tids, insert_rows)
        self.submissions += 1
        receipt = SubmitReceipt(
            tids=assigned, applied=asyncio.get_running_loop().create_future()
        )
        self._window.append((receipt.applied, ops))
        assert self._wake is not None
        self._wake.set()
        return receipt

    async def _pump(self) -> None:
        """The single consumer: flush windows and ship them to the lanes."""
        assert self._wake is not None
        loop = asyncio.get_running_loop()
        while True:
            await self._wake.wait()
            self._wake.clear()
            window = self._window
            self._window = []
            batches = self.coalescer.flush(self.max_batch)
            error: BaseException | None = None
            if batches:
                try:
                    await self._run_engine(
                        self.engine.backend.incremental_update_many, batches
                    )
                    self.ships += 1
                    self.shipped_batches += len(batches)
                except BaseException as exc:  # noqa: BLE001 - forwarded to producers
                    error = exc
            now = loop.time()
            released = 0
            for future, ops in window:
                released += ops
                if future.done():
                    continue
                if error is not None and ops:
                    future.set_exception(error)
                else:
                    future.set_result(now)
            if released:
                await self.admission.release(released)
            if self._closing and not self._window and not self.coalescer.pending_ops:
                return

    async def _barrier(self) -> None:
        """Wait until everything submitted so far is live in the merged state."""
        if not self._window and not self.coalescer.pending_ops:
            return
        fence: asyncio.Future = asyncio.get_running_loop().create_future()
        self._window.append((fence, 0))
        assert self._wake is not None
        self._wake.set()
        await fence

    # ------------------------------------------------------------------
    # Queries (served from the live merged state)
    # ------------------------------------------------------------------
    async def detect(self) -> dict[str, int]:
        """SV / MV / dirty counts of the maintained violation state.

        Barriers on pending submissions, then reads the merged flags — no
        re-detection runs (the sharded backend's ``full_detect_count``
        stays put).
        """
        self._require_running()
        await self._barrier()
        counts = await self._run_engine(self.engine.violation_counts)
        counts["tuples"] = await self._run_engine(self.engine.count)
        return counts

    async def breakdown(self) -> dict[int, dict[str, int]]:
        """Per-constraint statistics from the maintained per-shard state."""
        self._require_running()
        await self._barrier()
        return await self._run_engine(self.engine.backend.breakdown)

    async def repair(self, max_rounds: int = 10):
        """Repair the live data in place; the maintained state stays live.

        Runs the engine's strongest strategy for the backend (sharded
        engines: routed fix deltas, summary-elected group fixes, batched
        rounds) on the engine lane; streams submitted during the repair
        queue behind it and apply to the repaired data.
        """
        self._require_running()
        await self._barrier()
        return await self._run_engine(
            lambda: self.engine.repair(max_rounds=max_rounds)
        )

    async def stats(self) -> dict:
        """Service, coalescer, admission and lane statistics, one snapshot."""
        self._require_running()
        trace = getattr(self.engine.backend, "last_update_trace", None)
        return {
            "backend": self.engine.backend_name,
            "workers": self.engine.workers,
            "tuples": await self._run_engine(self.engine.count),
            "submissions": self.submissions,
            "ships": self.ships,
            "shipped_batches": self.shipped_batches,
            "coalescer": self.coalescer.stats(),
            "admission": self.admission.stats(),
            "last_update_trace": dict(trace) if trace else None,
        }
