"""Relation schemas, attributes and attribute domains.

The paper (Section II) defines eCFDs over a relation schema ``R`` with a
finite attribute set ``attr(R)``; every attribute ``A`` has a domain
``dom(A)`` which may be *finite* (with at least two elements) or *infinite*.
The distinction matters for the static analyses: Proposition 3.3 shows that,
unlike CFDs, eCFDs remain intractable even when every attribute has an
infinite domain, because a complement-set pattern can force an attribute to
range over a finite set anyway.

This module provides:

* :class:`Domain` — a finite or infinite value domain with membership tests
  and the ability to produce "fresh" values outside a given set (needed by
  the small-model constructions of Section III and the active-domain
  construction of Section IV).
* :class:`Attribute` — a named attribute bound to a domain.
* :class:`RelationSchema` — an ordered collection of attributes with lookup
  helpers, used by every other module in the library.

The concrete ``cust`` schema of the paper (Fig. 1) and the extended
``cust_ext`` schema used by the experimental study (Section VI) are exposed
as convenience constructors at the bottom of the module.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterable, Iterator, Sequence

from repro.exceptions import DomainError, SchemaError

__all__ = [
    "Domain",
    "Attribute",
    "RelationSchema",
    "cust_schema",
    "cust_ext_schema",
]

#: Values stored in relations are plain strings or integers.  The paper's
#: data is string-typed (city names, zip codes, phone numbers); integers are
#: accepted for convenience and compared by their string representation when
#: necessary inside the SQL substrate.
Value = str | int


@dataclass(frozen=True)
class Domain:
    """The domain of an attribute.

    A domain is either *infinite* (modelling, e.g., arbitrary strings) or
    *finite*, in which case the full set of admissible values is stored.

    Parameters
    ----------
    name:
        A human-readable name, e.g. ``"string"`` or ``"bool"``.
    values:
        ``None`` for an infinite domain; otherwise the frozen set of
        admissible values.  A finite domain must contain at least two
        elements (the paper assumes ``|dom(A)| >= 2``).
    """

    name: str = "string"
    values: frozenset[Value] | None = None

    def __post_init__(self) -> None:
        if self.values is not None:
            if len(self.values) < 2:
                raise DomainError(
                    f"finite domain {self.name!r} must have at least two values, "
                    f"got {len(self.values)}"
                )

    # ------------------------------------------------------------------
    # Basic predicates
    # ------------------------------------------------------------------
    @property
    def is_finite(self) -> bool:
        """Whether this is a finite domain."""
        return self.values is not None

    def __contains__(self, value: Value) -> bool:
        if self.values is None:
            return isinstance(value, (str, int))
        return value in self.values

    def size(self) -> int | None:
        """Number of values in the domain, or ``None`` if infinite."""
        return None if self.values is None else len(self.values)

    # ------------------------------------------------------------------
    # Value construction helpers
    # ------------------------------------------------------------------
    def fresh_value(self, exclude: Iterable[Value] = ()) -> Value | None:
        """Return a value of the domain not occurring in ``exclude``.

        For an infinite domain a fresh string is synthesised; for a finite
        domain the first unused value (in sorted order, for determinism) is
        returned, or ``None`` when every value is excluded.  This is the
        "extra value outside the active domain" used in the satisfiability
        and implication constructions of Sections III-IV.
        """
        excluded = set(exclude)
        if self.values is None:
            index = 0
            candidate: Value = "_fresh_0"
            while candidate in excluded:
                index += 1
                candidate = f"_fresh_{index}"
            return candidate
        for value in sorted(self.values, key=str):
            if value not in excluded:
                return value
        return None

    def sample(self, count: int) -> list[Value]:
        """Return up to ``count`` deterministic values from the domain."""
        if self.values is None:
            return [f"_v{i}" for i in range(count)]
        ordered = sorted(self.values, key=str)
        return ordered[:count]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.values is None:
            return f"Domain({self.name!r}, infinite)"
        return f"Domain({self.name!r}, |{len(self.values)}| values)"


#: Shared default domain: infinite strings.
STRING = Domain("string")


@dataclass(frozen=True)
class Attribute:
    """A named attribute of a relation schema.

    Attributes compare and hash by name only, so the same logical attribute
    referenced from different schema copies is treated as equal; the domain
    is carried along for value checking.
    """

    name: str
    domain: Domain = STRING

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise SchemaError(f"attribute name must be a non-empty string, got {self.name!r}")
        if not self.name.replace("_", "").isalnum():
            raise SchemaError(
                f"attribute name {self.name!r} must be alphanumeric (underscores allowed)"
            )

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Attribute):
            return self.name == other.name
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Attribute({self.name!r})"


class RelationSchema:
    """An ordered relation schema ``R(A1, ..., An)``.

    The schema is the anchor object of the library: eCFDs, instances, the
    SQL encoding and the data generators are all defined with respect to a
    schema.  Attribute order is significant only for display and for the
    column order of the SQL substrate.

    Parameters
    ----------
    name:
        Relation name, e.g. ``"cust"``.
    attributes:
        The attributes, either :class:`Attribute` objects or plain strings
        (in which case an infinite string domain is assumed).
    """

    def __init__(self, name: str, attributes: Sequence[Attribute | str]):
        if not name:
            raise SchemaError("relation name must be non-empty")
        self.name = name
        resolved: list[Attribute] = []
        for attribute in attributes:
            if isinstance(attribute, str):
                attribute = Attribute(attribute)
            resolved.append(attribute)
        names = [a.name for a in resolved]
        duplicates = {n for n in names if names.count(n) > 1}
        if duplicates:
            raise SchemaError(f"duplicate attribute names in schema {name!r}: {sorted(duplicates)}")
        if not resolved:
            raise SchemaError(f"schema {name!r} must have at least one attribute")
        self._attributes: tuple[Attribute, ...] = tuple(resolved)
        self._by_name: dict[str, Attribute] = {a.name: a for a in resolved}

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    @property
    def attributes(self) -> tuple[Attribute, ...]:
        """The attributes in declaration order."""
        return self._attributes

    @property
    def attribute_names(self) -> tuple[str, ...]:
        """The attribute names in declaration order."""
        return tuple(a.name for a in self._attributes)

    def attribute(self, name: str) -> Attribute:
        """Return the attribute called ``name``.

        Raises
        ------
        SchemaError
            If the schema has no such attribute.
        """
        try:
            return self._by_name[name]
        except KeyError:
            raise SchemaError(
                f"schema {self.name!r} has no attribute {name!r}; "
                f"known attributes: {list(self.attribute_names)}"
            ) from None

    def domain(self, name: str) -> Domain:
        """Return the domain of attribute ``name``."""
        return self.attribute(name).domain

    def __contains__(self, name: object) -> bool:
        return name in self._by_name

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self._attributes)

    def __len__(self) -> int:
        return len(self._attributes)

    def index_of(self, name: str) -> int:
        """Return the positional index of attribute ``name``."""
        self.attribute(name)
        return self.attribute_names.index(name)

    # ------------------------------------------------------------------
    # Validation helpers used throughout the library
    # ------------------------------------------------------------------
    def check_attributes(self, names: Iterable[str], context: str = "constraint") -> list[str]:
        """Validate that every name in ``names`` belongs to this schema.

        Returns the names as a list (preserving order) so call sites can
        both validate and normalise in one step.
        """
        result = []
        for name in names:
            if name not in self:
                raise SchemaError(
                    f"{context} refers to attribute {name!r} which is not in schema "
                    f"{self.name!r} (attributes: {list(self.attribute_names)})"
                )
            result.append(name)
        return result

    def check_value(self, attribute: str, value: Value) -> Value:
        """Validate that ``value`` lies in the domain of ``attribute``."""
        domain = self.domain(attribute)
        if value not in domain:
            raise DomainError(
                f"value {value!r} is not in the domain of {self.name}.{attribute}"
            )
        return value

    # ------------------------------------------------------------------
    # Dunder plumbing
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if isinstance(other, RelationSchema):
            return self.name == other.name and self._attributes == other._attributes
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.name, self._attributes))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RelationSchema({self.name!r}, {list(self.attribute_names)})"


# ----------------------------------------------------------------------
# Paper schemas
# ----------------------------------------------------------------------
def cust_schema() -> RelationSchema:
    """The ``cust(AC, PN, NM, STR, CT, ZIP)`` schema of Fig. 1.

    A customer in New York State described by area code (AC), phone number
    (PN), name (NM), street (STR), city (CT) and zip code (ZIP).  All
    attributes have infinite string domains, matching the paper's setting
    where the interesting finite behaviour comes from the eCFD patterns
    themselves rather than from finite attribute domains.
    """
    return RelationSchema("cust", ["AC", "PN", "NM", "STR", "CT", "ZIP"])


def cust_ext_schema() -> RelationSchema:
    """The extended customer schema used in the experimental study.

    Section VI extends ``cust`` with "information about items bought by
    different customers".  We model that extension with an item type, item
    title and price attribute, which is what the generated workload eCFDs
    range over in addition to the geographic attributes.
    """
    return RelationSchema(
        "cust_ext",
        ["AC", "PN", "NM", "STR", "CT", "ZIP", "ITEM_TYPE", "ITEM_TITLE", "PRICE"],
    )
