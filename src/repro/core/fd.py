"""Standard functional dependencies — the substrate eCFDs embed.

Every eCFD ``(R: X -> Y, Yp, Tp)`` carries an *embedded* FD ``X -> Y`` that
is enforced on the tuples matching each pattern's LHS.  The library
therefore needs ordinary FD machinery:

* :class:`FunctionalDependency` — ``X -> Y`` over a schema;
* :func:`attribute_closure` — ``X⁺`` under a set of FDs (Armstrong axioms);
* :func:`implies` — classical FD implication via the closure test;
* :func:`minimal_cover` — canonical cover computation, used by the eCFD
  workload generator and by the discovery extension to de-duplicate the
  embedded FDs it produces;
* :func:`check_fd` — does an in-memory relation satisfy an FD, and if not,
  which tuple groups witness the violation.  This is the reference
  semantics the naive detector builds on.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Sequence

from repro.core.instance import Relation, RelationTuple
from repro.core.schema import RelationSchema, Value
from repro.exceptions import ConstraintError

__all__ = [
    "FunctionalDependency",
    "attribute_closure",
    "implies",
    "minimal_cover",
    "check_fd",
]


@dataclass(frozen=True)
class FunctionalDependency:
    """A standard FD ``X -> Y`` over a relation schema.

    ``lhs`` and ``rhs`` are stored as sorted tuples of attribute names so
    that FDs are hashable and order-insensitive.  An empty ``lhs`` is legal
    (it asserts that the ``rhs`` attributes are constant across the
    relation); an empty ``rhs`` is also legal and trivially satisfied — the
    paper uses the form ``[CT] -> []`` in eCFD ψ2 where all the work is done
    by the ``Yp`` pattern attributes.
    """

    schema: RelationSchema
    lhs: tuple[str, ...]
    rhs: tuple[str, ...]

    def __init__(self, schema: RelationSchema, lhs: Iterable[str], rhs: Iterable[str]):
        lhs_checked = tuple(sorted(set(schema.check_attributes(lhs, context="FD LHS"))))
        rhs_checked = tuple(sorted(set(schema.check_attributes(rhs, context="FD RHS"))))
        object.__setattr__(self, "schema", schema)
        object.__setattr__(self, "lhs", lhs_checked)
        object.__setattr__(self, "rhs", rhs_checked)

    # ------------------------------------------------------------------
    # Semantics
    # ------------------------------------------------------------------
    def holds_on(self, tuples: Iterable[RelationTuple]) -> bool:
        """Whether the FD holds on the given collection of tuples."""
        return not self.violating_groups(tuples)

    def violating_groups(
        self, tuples: Iterable[RelationTuple]
    ) -> dict[tuple[Value, ...], list[RelationTuple]]:
        """Groups of tuples that agree on ``lhs`` but disagree on ``rhs``.

        The returned mapping is keyed by the shared LHS value vector; each
        value is the full list of tuples in the offending group.  An empty
        mapping means the FD holds.
        """
        if not self.rhs:
            return {}
        groups: dict[tuple[Value, ...], list[RelationTuple]] = {}
        for t in tuples:
            groups.setdefault(t.project(self.lhs), []).append(t)
        violating: dict[tuple[Value, ...], list[RelationTuple]] = {}
        for key, members in groups.items():
            rhs_values = {m.project(self.rhs) for m in members}
            if len(rhs_values) > 1:
                violating[key] = members
        return violating

    # ------------------------------------------------------------------
    # Display
    # ------------------------------------------------------------------
    def __str__(self) -> str:
        lhs = ", ".join(self.lhs) or "∅"
        rhs = ", ".join(self.rhs) or "∅"
        return f"{self.schema.name}: [{lhs}] -> [{rhs}]"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FunctionalDependency({self.schema.name!r}, {self.lhs!r} -> {self.rhs!r})"


def attribute_closure(
    attributes: Iterable[str], fds: Sequence[FunctionalDependency]
) -> frozenset[str]:
    """The closure ``X⁺`` of ``attributes`` under ``fds`` (Armstrong axioms).

    Standard fixed-point computation: repeatedly add the RHS of every FD
    whose LHS is already contained in the closure.
    """
    closure = set(attributes)
    changed = True
    while changed:
        changed = False
        for fd in fds:
            if set(fd.lhs) <= closure and not set(fd.rhs) <= closure:
                closure.update(fd.rhs)
                changed = True
    return frozenset(closure)


def implies(fds: Sequence[FunctionalDependency], candidate: FunctionalDependency) -> bool:
    """Classical FD implication: does ``fds ⊨ candidate``?

    Decided with the closure test ``rhs ⊆ lhs⁺``; sound and complete for
    standard FDs.
    """
    closure = attribute_closure(candidate.lhs, fds)
    return set(candidate.rhs) <= closure


def minimal_cover(fds: Sequence[FunctionalDependency]) -> list[FunctionalDependency]:
    """Compute a minimal (canonical) cover of ``fds``.

    The cover has (1) singleton right-hand sides, (2) no extraneous LHS
    attributes, and (3) no redundant FDs.  Deterministic: ties are broken by
    sorted attribute order so tests can rely on stable output.
    """
    if not fds:
        return []
    schema = fds[0].schema
    for fd in fds:
        if fd.schema != schema:
            raise ConstraintError("minimal_cover requires FDs over a single schema")

    # Step 1: singleton RHS.
    split: list[FunctionalDependency] = []
    for fd in fds:
        for attribute in fd.rhs:
            split.append(FunctionalDependency(schema, fd.lhs, [attribute]))

    # Step 2: remove extraneous LHS attributes.
    reduced: list[FunctionalDependency] = []
    for fd in split:
        lhs = list(fd.lhs)
        for attribute in sorted(fd.lhs):
            if len(lhs) == 1:
                break
            trial = [a for a in lhs if a != attribute]
            if set(fd.rhs) <= attribute_closure(trial, split):
                lhs = trial
        reduced.append(FunctionalDependency(schema, lhs, fd.rhs))

    # Step 3: remove redundant FDs.
    result = list(dict.fromkeys(reduced))  # de-duplicate, preserve order
    index = 0
    while index < len(result):
        fd = result[index]
        remainder = result[:index] + result[index + 1 :]
        if remainder and implies(remainder, fd):
            result = remainder
        else:
            index += 1
    return result


def check_fd(relation: Relation, fd: FunctionalDependency) -> dict[tuple[Value, ...], list[RelationTuple]]:
    """Check an FD on a whole relation; returns the violating groups."""
    if relation.schema != fd.schema:
        raise ConstraintError(
            f"FD over {fd.schema.name!r} cannot be checked on a relation over "
            f"{relation.schema.name!r}"
        )
    return fd.violating_groups(relation.tuples())
