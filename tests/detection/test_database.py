"""Unit tests for the SQLite substrate (repro.detection.database)."""

import pytest

from repro.core import Relation, RelationSchema, cust_schema
from repro.detection.database import ECFDDatabase, quote_identifier
from repro.exceptions import DatabaseError
from tests.conftest import FIG1_ROWS


@pytest.fixture
def db(schema):
    with ECFDDatabase(schema) as database:
        yield database


class TestQuoting:
    def test_quote_identifier(self):
        assert quote_identifier("CT") == '"CT"'
        assert quote_identifier('we"ird') == '"we""ird"'


class TestLoading:
    def test_load_relation_preserves_tids(self, db, d0):
        assert db.load_relation(d0) == 6
        assert db.count() == 6
        assert db.all_tids() == [1, 2, 3, 4, 5, 6]
        assert db.fetch_row(1)["CT"] == "Albany"
        assert db.fetch_row(99) is None

    def test_load_relation_schema_mismatch(self, db):
        other_schema = RelationSchema("other", ["A", "B"])
        other = Relation(other_schema, [["x", "y"]])
        with pytest.raises(DatabaseError):
            db.load_relation(other)

    def test_insert_tuples_assigns_fresh_tids(self, db, d0):
        db.load_relation(d0)
        tids = db.insert_tuples([FIG1_ROWS[0], FIG1_ROWS[1]])
        assert tids == [7, 8]
        assert db.count() == 8

    def test_insert_tuples_with_explicit_tids(self, db):
        tids = db.insert_tuples([FIG1_ROWS[0]], tids=[42])
        assert tids == [42]
        assert db.fetch_row(42)["CT"] == "Albany"

    def test_insert_tuples_tid_mismatch(self, db):
        with pytest.raises(DatabaseError):
            db.insert_tuples([FIG1_ROWS[0], FIG1_ROWS[1]], tids=[1])

    def test_delete_tuples(self, db, d0):
        db.load_relation(d0)
        assert db.delete_tuples([1, 4]) == 2
        assert db.all_tids() == [2, 3, 5, 6]
        assert db.max_tid() == 6

    def test_max_tid_empty(self, db):
        assert db.max_tid() == 0
        assert db.count() == 0


class TestRoundTrip:
    def test_to_relation_round_trips(self, db, d0):
        db.load_relation(d0)
        back = db.to_relation()
        assert len(back) == 6
        assert back.get(4)["CT"] == "NYC"
        assert back.get(4)["AC"] == "100"
        # Values come back as strings, matching how they were stored.
        assert all(isinstance(v, str) for v in back.get(1).values())

    def test_to_relation_preserves_gaps(self, db, d0):
        db.load_relation(d0)
        db.delete_tuples([3])
        back = db.to_relation()
        assert back.get(3) is None
        assert back.get(6) is not None


class TestFlags:
    def test_flags_default_to_zero(self, db, d0):
        db.load_relation(d0)
        assert db.violations().is_clean()
        assert db.flag_counts() == {"sv": 0, "mv": 0, "dirty": 0}

    def test_manual_flag_update_and_reset(self, db, d0):
        db.load_relation(d0)
        db.execute(f'UPDATE {quote_identifier(db.table_name)} SET SV = 1 WHERE tid IN (1, 2)')
        db.execute(f'UPDATE {quote_identifier(db.table_name)} SET MV = 1 WHERE tid IN (2, 3)')
        db.commit()
        violations = db.violations()
        assert violations.sv_tids == frozenset({1, 2})
        assert violations.mv_tids == frozenset({2, 3})
        assert db.flag_counts() == {"sv": 2, "mv": 2, "dirty": 3}
        db.reset_flags()
        assert db.violations().is_clean()
