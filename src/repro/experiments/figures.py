"""One driver per figure of the paper's evaluation (Section VI).

Each ``figXX`` function regenerates the corresponding figure's data series
at a configurable scale and returns an
:class:`~repro.experiments.reporting.ExperimentResult` whose rows are the
same quantities the paper plots:

==========  ===============================================================
Driver      Paper figure
==========  ===============================================================
``fig5a``   BATCHDETECT running time vs. |D| (noise 5%, base workload)
``fig5b``   BATCHDETECT running time vs. noise% (|D| fixed)
``fig5c``   BATCHDETECT running time vs. |Tp| (|D|, noise fixed)
``fig6a``   INCDETECT (insertions and deletions) vs. BATCHDETECT, vs. |D|
``fig6b``   same comparison vs. noise%
``fig6c``   same comparison vs. |Tp|
``fig7a``   INCDETECT vs. BATCHDETECT vs. update size |ΔD|
``fig7b``   growth of #SV / #MV violations vs. update size
==========  ===============================================================

Two ablation drivers accompany them (they have no paper counterpart but
exercise design decisions called out in DESIGN.md):

* ``ablation_encoding`` — the encoded SQL detector vs. the naive per-pattern
  Python detector as the workload's tableau grows;
* ``ablation_maxss`` — MAXSS approximation quality (greedy / walksat /
  portfolio) against the exact optimum on small random constraint sets.

Absolute times are not comparable to the paper's (different hardware and
DBMS); EXPERIMENTS.md records the *shape* comparison for every figure.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from collections.abc import Callable
from typing import Protocol

from repro.core.ecfd import ECFDSet
from repro.core.schema import cust_ext_schema
from repro.datagen.generator import DatasetGenerator
from repro.datagen.updates import UpdateGenerator
from repro.datagen.workload import paper_workload, paper_workload_with_tableau_size
from repro.experiments.reporting import ExperimentResult
from repro.experiments.runner import (
    Scale,
    current_scale,
    make_engine,
    timed_batch_after_update,
    timed_batch_detection,
    timed_incremental_update,
)
from repro.experiments.timing import Measurement, stopwatch

__all__ = [
    "fig5a",
    "fig5b",
    "fig5c",
    "fig6a",
    "fig6b",
    "fig6c",
    "fig7a",
    "fig7b",
    "ablation_encoding",
    "ablation_maxss",
    "DriverSpec",
    "register_driver",
    "available_drivers",
    "resolve_driver",
    "ALL_FIGURES",
]


# ----------------------------------------------------------------------
# The driver registry
# ----------------------------------------------------------------------
class Driver(Protocol):
    def __call__(self, scale: "Scale | None" = None, seed: int = 0) -> ExperimentResult: ...


@dataclass(frozen=True)
class DriverSpec:
    """One registered experiment driver."""

    name: str
    kind: str  #: ``"figure"`` (a paper figure) or ``"ablation"``
    fn: Driver


_DRIVERS: dict[str, DriverSpec] = {}


def register_driver(name: str, kind: str = "figure") -> Callable[[Driver], Driver]:
    """Register the decorated driver under ``name``.

    Registration is the single source of truth: ``run_all`` enumerates
    this registry, the reports layer mirrors it figure-for-figure, and a
    regression test fails when either side drifts — a driver added here
    cannot silently be missing from the CLI or the figure registry.
    """

    def decorate(fn: Driver) -> Driver:
        if name in _DRIVERS:
            raise ValueError(f"experiment driver {name!r} is already registered")
        _DRIVERS[name] = DriverSpec(name=name, kind=kind, fn=fn)
        return fn

    return decorate


def available_drivers() -> dict[str, DriverSpec]:
    """All registered drivers, in registration (= presentation) order."""
    return dict(_DRIVERS)


def resolve_driver(name: str) -> DriverSpec:
    """The registered driver ``name``; raises with the known names otherwise."""
    try:
        return _DRIVERS[name]
    except KeyError:
        raise ValueError(
            f"unknown experiment {name!r}; known: {sorted(_DRIVERS)}"
        ) from None


def _workload() -> ECFDSet:
    return paper_workload(cust_ext_schema())


# ----------------------------------------------------------------------
# Figure 5 — BATCHDETECT scalability
# ----------------------------------------------------------------------
@register_driver("fig5a")
def fig5a(scale: Scale | None = None, seed: int = 0) -> ExperimentResult:
    """Fig. 5(a): BATCHDETECT running time as |D| grows (noise fixed at 5%)."""
    scale = scale or current_scale()
    sigma = _workload()
    result = ExperimentResult("fig5a", "BATCHDETECT scalability in |D|")
    for size in scale.dataset_sizes:
        rows = DatasetGenerator(seed=seed).generate_rows(size, scale.default_noise)
        measurement, _ = timed_batch_detection(rows, sigma, parameter=size)
        result.measurements.append(measurement)
    return result


@register_driver("fig5b")
def fig5b(scale: Scale | None = None, seed: int = 0) -> ExperimentResult:
    """Fig. 5(b): BATCHDETECT running time as the noise rate grows (|D| fixed)."""
    scale = scale or current_scale()
    sigma = _workload()
    result = ExperimentResult("fig5b", "BATCHDETECT scalability in noise%")
    for noise in scale.noise_levels:
        rows = DatasetGenerator(seed=seed).generate_rows(scale.default_size, noise)
        measurement, _ = timed_batch_detection(rows, sigma, parameter=noise)
        result.measurements.append(measurement)
    return result


@register_driver("fig5c")
def fig5c(scale: Scale | None = None, seed: int = 0) -> ExperimentResult:
    """Fig. 5(c): BATCHDETECT running time as |Tp| grows (|D|, noise fixed)."""
    scale = scale or current_scale()
    result = ExperimentResult("fig5c", "BATCHDETECT scalability in |Tp|")
    rows = DatasetGenerator(seed=seed).generate_rows(scale.default_size, scale.default_noise)
    for tableau_size in scale.tableau_sizes:
        sigma = paper_workload_with_tableau_size(tableau_size)
        measurement, _ = timed_batch_detection(rows, sigma, parameter=tableau_size)
        result.measurements.append(measurement)
    return result


# ----------------------------------------------------------------------
# Figure 6 — INCDETECT vs BATCHDETECT under the same sweeps
# ----------------------------------------------------------------------
def _compare_on_update(
    result: ExperimentResult,
    rows: list[dict[str, str]],
    sigma: ECFDSet,
    parameter: float,
    update_size: int,
    noise: float,
    seed: int,
) -> None:
    """Append the three compared series for one sweep point."""
    generator = DatasetGenerator(seed=seed + 1)
    updates = UpdateGenerator(generator, seed=seed + 2)
    batch = updates.make_batch(
        existing_tids=range(1, len(rows) + 1),
        insert_count=update_size,
        delete_count=min(update_size, len(rows)),
        noise_percent=noise,
    )
    deletions, insertions, _ = timed_incremental_update(rows, sigma, batch, parameter)
    baseline, _ = timed_batch_after_update(rows, sigma, batch, parameter)
    result.measurements.extend([deletions, insertions, baseline])


@register_driver("fig6a")
def fig6a(scale: Scale | None = None, seed: int = 0) -> ExperimentResult:
    """Fig. 6(a): INCDETECT vs BATCHDETECT as |D| grows (fixed update size)."""
    scale = scale or current_scale()
    sigma = _workload()
    result = ExperimentResult("fig6a", "INCDETECT vs BATCHDETECT in |D|")
    for size in scale.dataset_sizes:
        rows = DatasetGenerator(seed=seed).generate_rows(size, scale.default_noise)
        update_size = min(scale.fixed_update_size, size)
        _compare_on_update(result, rows, sigma, size, update_size, scale.default_noise, seed)
    return result


@register_driver("fig6b")
def fig6b(scale: Scale | None = None, seed: int = 0) -> ExperimentResult:
    """Fig. 6(b): INCDETECT vs BATCHDETECT as the noise rate grows."""
    scale = scale or current_scale()
    sigma = _workload()
    result = ExperimentResult("fig6b", "INCDETECT vs BATCHDETECT in noise%")
    for noise in scale.noise_levels:
        rows = DatasetGenerator(seed=seed).generate_rows(scale.default_size, noise)
        _compare_on_update(result, rows, sigma, noise, scale.fixed_update_size, noise, seed)
    return result


@register_driver("fig6c")
def fig6c(scale: Scale | None = None, seed: int = 0) -> ExperimentResult:
    """Fig. 6(c): INCDETECT vs BATCHDETECT as |Tp| grows."""
    scale = scale or current_scale()
    result = ExperimentResult("fig6c", "INCDETECT vs BATCHDETECT in |Tp|")
    rows = DatasetGenerator(seed=seed).generate_rows(scale.default_size, scale.default_noise)
    for tableau_size in scale.tableau_sizes:
        sigma = paper_workload_with_tableau_size(tableau_size)
        _compare_on_update(
            result, rows, sigma, tableau_size, scale.fixed_update_size, scale.default_noise, seed
        )
    return result


# ----------------------------------------------------------------------
# Figure 7 — effect of the update size
# ----------------------------------------------------------------------
@register_driver("fig7a")
def fig7a(scale: Scale | None = None, seed: int = 0) -> ExperimentResult:
    """Fig. 7(a): INCDETECT vs BATCHDETECT as the update size |ΔD| grows."""
    scale = scale or current_scale()
    sigma = _workload()
    result = ExperimentResult("fig7a", "Effect of update size on detection cost")
    rows = DatasetGenerator(seed=seed).generate_rows(scale.default_size, scale.default_noise)
    for update_size in scale.update_sizes:
        bounded = min(update_size, len(rows))
        _compare_on_update(result, rows, sigma, bounded, bounded, scale.default_noise, seed)
    return result


@register_driver("fig7b")
def fig7b(scale: Scale | None = None, seed: int = 0) -> ExperimentResult:
    """Fig. 7(b): growth of the number of SV / MV violation changes with the update size.

    The paper reports how much the single- and multiple-tuple violation sets
    change between the database before and after the update (DSV / DMV): the
    larger the update, the more violations appear and disappear.  The series
    therefore records, per update size, the size of the symmetric difference
    of the SV tid-sets and of the MV tid-sets before and after the update,
    alongside the absolute counts.
    """
    scale = scale or current_scale()
    sigma = _workload()
    result = ExperimentResult("fig7b", "Violation growth with update size")
    rows = DatasetGenerator(seed=seed).generate_rows(scale.default_size, scale.default_noise)
    baseline, before = timed_batch_detection(rows, sigma, parameter=0, label="before-update")
    result.measurements.append(baseline)
    for update_size in scale.update_sizes:
        bounded = min(update_size, len(rows))
        generator = DatasetGenerator(seed=seed + 1)
        updates = UpdateGenerator(generator, seed=seed + 2)
        batch = updates.make_batch(
            existing_tids=range(1, len(rows) + 1),
            insert_count=bounded,
            delete_count=bounded,
            noise_percent=scale.default_noise,
        )
        measurement, after = timed_batch_after_update(rows, sigma, batch, parameter=bounded)
        measurement.label = "after-update"
        measurement.extra["dsv"] = len(before.sv_tids ^ after.sv_tids)
        measurement.extra["dmv"] = len(before.mv_tids ^ after.mv_tids)
        result.measurements.append(measurement)
    return result


# ----------------------------------------------------------------------
# Ablations
# ----------------------------------------------------------------------
@register_driver("ablation-encoding", kind="ablation")
def ablation_encoding(scale: Scale | None = None, seed: int = 0) -> ExperimentResult:
    """Encoded SQL detection vs. the naive per-pattern detector as |Tp| grows.

    The paper argues that treating the tableaux as data keeps the number of
    SQL queries (and database passes) constant; the naive detector instead
    scans the data once per pattern tuple.  This ablation measures both on
    the same datasets so the scaling difference is visible.
    """
    scale = scale or current_scale()
    result = ExperimentResult("ablation-encoding", "Encoded SQL detection vs naive per-pattern detection")
    size = max(scale.dataset_sizes[0], scale.default_size // 10)
    rows = DatasetGenerator(seed=seed).generate_rows(size, scale.default_noise)
    for tableau_size in scale.tableau_sizes:
        sigma = paper_workload_with_tableau_size(tableau_size)
        sql_measurement, sql_violations = timed_batch_detection(
            rows, sigma, parameter=tableau_size, label="batchdetect-sql"
        )
        result.measurements.append(sql_measurement)

        naive_engine = make_engine(rows, sigma, backend="naive")
        try:
            naive_result = naive_engine.detect()
        finally:
            naive_engine.close()
        result.measurements.append(
            Measurement(
                label="naive-python",
                parameter=tableau_size,
                seconds=naive_result.seconds,
                extra={
                    "tuples": size,
                    "dirty": naive_result.dirty_count,
                    "agrees_with_sql": float(naive_result.violations == sql_violations),
                },
            )
        )
    return result


def ablation_maxss(seed: int = 0, trials: int = 5, sigma_size: int = 8) -> ExperimentResult:
    """MAXSS approximation quality against the exact optimum on random constraint sets.

    Random small constraint sets (some deliberately conflicting) are solved
    with each MAXGSAT solver; the recovered satisfiable-subset cardinality is
    compared to the exact optimum, giving an empirical view of the
    approximation guarantee of Section IV.
    """
    from repro.analysis.maxss import max_satisfiable_subset
    from repro.core.ecfd import ECFD
    from repro.core.schema import cust_schema
    from repro.sat import SOLVERS

    rng = random.Random(seed)
    schema = cust_schema()
    cities = ["NYC", "LI", "Albany", "Troy", "Colonie", "Utica"]
    codes = ["212", "518", "315", "646", "716"]
    result = ExperimentResult("ablation-maxss", "MAXSS approximation quality vs exact optimum")

    for trial in range(trials):
        constraints = []
        for index in range(sigma_size):
            city = rng.choice(cities)
            allowed = rng.sample(codes, rng.randint(1, 2))
            if rng.random() < 0.35:
                # A conflicting constraint: the same city must avoid those codes.
                constraints.append(
                    ECFD(
                        schema, ["CT"], [], ["AC"],
                        tableau=[({"CT": {city}}, {"AC": set(allowed)})],
                        name=f"t{trial}_force_{index}",
                    )
                )
                constraints.append(
                    ECFD(
                        schema, ["AC"], [], ["CT"],
                        tableau=[({"AC": "_"}, {"CT": {city}})],
                        name=f"t{trial}_pin_{index}",
                    )
                )
            else:
                constraints.append(
                    ECFD(
                        schema, ["CT"], [], ["AC"],
                        tableau=[({"CT": {city}}, {"AC": set(allowed)})],
                        name=f"t{trial}_bind_{index}",
                    )
                )
        constraints = constraints[:sigma_size]

        exact = max_satisfiable_subset(constraints, solver=SOLVERS["exact"])
        for name in ("greedy", "walksat", "best"):
            with stopwatch() as timer:
                approx = max_satisfiable_subset(constraints, solver=SOLVERS[name])
            result.measurements.append(
                Measurement(
                    label=name,
                    parameter=trial,
                    seconds=timer.elapsed,
                    extra={
                        "sigma_size": len(constraints),
                        "exact_optimum": exact.cardinality,
                        "approx_cardinality": approx.cardinality,
                        "ratio": round(approx.cardinality / max(exact.cardinality, 1), 3),
                    },
                )
            )
    return result


@register_driver("ablation-maxss", kind="ablation")
def _ablation_maxss_driver(scale: Scale | None = None, seed: int = 0) -> ExperimentResult:
    """Registry adapter: MAXSS quality does not sweep a dataset scale."""
    return ablation_maxss(seed=seed)


#: Backwards-compatible view of the registry (scale-sweeping drivers only).
#: New code should use :func:`available_drivers` / :func:`resolve_driver`.
ALL_FIGURES = {
    name: spec.fn for name, spec in available_drivers().items() if name != "ablation-maxss"
}
