"""Sharded backend: registry wiring, façade routing and exactness.

The heart of this suite is the satellite guarantee: for every delegate
backend, an engine with ``workers=N`` returns *identical*
``DetectionResult.violations`` to an engine with ``workers=1`` on a seeded
noisy workload — sharding is an execution strategy, never a semantics
change.
"""

import pickle

import pytest

from repro.core.schema import cust_ext_schema
from repro.core.patterns import ComplementSet, ValueSet
from repro.datagen.generator import DatasetGenerator
from repro.datagen.workload import paper_workload
from repro.engine import DataQualityEngine, ShardedBackend, available_backends, create_backend
from repro.exceptions import EngineError
from repro.parallel import detect_sharded

DELEGATES = ("naive", "batch", "incremental")
#: Seeded 5k-tuple noisy workload shared by the equivalence tests.
EQUIVALENCE_SIZE = 5_000


@pytest.fixture(scope="module")
def ext_schema():
    return cust_ext_schema()


@pytest.fixture(scope="module")
def sigma():
    return paper_workload()


@pytest.fixture(scope="module")
def noisy_rows():
    return DatasetGenerator(seed=42).generate_rows(EQUIVALENCE_SIZE, 5.0)


@pytest.fixture(scope="module")
def small_rows():
    return DatasetGenerator(seed=7).generate_rows(400, 10.0)


class TestRegistryAndConstruction:
    def test_sharded_backend_is_registered(self):
        assert "sharded" in available_backends()

    def test_create_backend_forwards_options(self, ext_schema, sigma):
        backend = create_backend(
            "sharded", schema=ext_schema, sigma=sigma,
            delegate="naive", workers=3, executor="serial",
        )
        assert isinstance(backend, ShardedBackend)
        assert backend.delegate == "naive"
        assert backend.workers == 3

    def test_sharded_cannot_delegate_to_itself(self, ext_schema, sigma):
        with pytest.raises(EngineError):
            ShardedBackend(ext_schema, sigma, delegate="sharded")

    def test_unknown_executor_rejected(self, ext_schema, sigma):
        with pytest.raises(EngineError):
            ShardedBackend(ext_schema, sigma, executor="quantum")

    def test_file_backed_path_rejected(self, ext_schema, sigma, tmp_path):
        # A file-backed store would be silently ignored by the in-memory
        # shards; better to fail loudly than change data visibility.
        with pytest.raises(EngineError):
            ShardedBackend(ext_schema, sigma, path=str(tmp_path / "data.db"))
        with pytest.raises(EngineError):
            DataQualityEngine(
                ext_schema, sigma, backend="batch", workers=2, path=str(tmp_path / "data.db")
            )

    def test_invalid_worker_counts_rejected(self, ext_schema, sigma):
        with pytest.raises(EngineError):
            ShardedBackend(ext_schema, sigma, workers=0)
        with pytest.raises(EngineError):
            DataQualityEngine(ext_schema, sigma, workers=0)

    def test_pattern_values_pickle_for_process_workers(self):
        # Shipping Σ to process-pool workers requires picklable patterns;
        # the frozen/slots dataclasses need their explicit __reduce__.
        for pattern in (ValueSet(["a", "b"]), ComplementSet(["NYC", "LI"])):
            assert pickle.loads(pickle.dumps(pattern)) == pattern


class TestFacadeRouting:
    def test_workers_one_keeps_plain_delegate(self, ext_schema, sigma):
        engine = DataQualityEngine(ext_schema, sigma, backend="batch", workers=1)
        assert engine.backend_name == "batch"

    def test_workers_many_route_through_sharded(self, ext_schema, sigma):
        engine = DataQualityEngine(ext_schema, sigma, backend="batch", workers=4)
        assert engine.backend_name == "sharded"
        assert isinstance(engine.backend, ShardedBackend)
        assert engine.backend.delegate == "batch"
        assert engine.backend.workers == 4

    def test_explicit_sharded_backend_name(self, ext_schema, sigma):
        engine = DataQualityEngine(ext_schema, sigma, backend="sharded", workers=2)
        assert engine.backend_name == "sharded"
        assert engine.backend.workers == 2


class TestShardedEquivalence:
    @pytest.mark.parametrize("delegate", DELEGATES)
    def test_workers_n_matches_workers_1_on_noisy_5k(
        self, ext_schema, sigma, noisy_rows, delegate
    ):
        """The satellite guarantee, on the default (process) executor."""
        single = DataQualityEngine(ext_schema, sigma, backend=delegate, workers=1)
        single.load(noisy_rows)
        reference = single.detect()

        sharded = DataQualityEngine(ext_schema, sigma, backend=delegate, workers=4)
        sharded.load(noisy_rows)
        parallel = sharded.detect()

        assert parallel.violations == reference.violations
        assert parallel.tuple_count == reference.tuple_count
        assert (parallel.sv_count, parallel.mv_count, parallel.dirty_count) == (
            reference.sv_count, reference.mv_count, reference.dirty_count,
        )
        single.close()
        sharded.close()

    @pytest.mark.parametrize("executor", ("serial", "thread", "process"))
    def test_every_executor_agrees(self, ext_schema, sigma, small_rows, executor):
        base = DataQualityEngine(ext_schema, sigma, backend="batch")
        base.load(small_rows)
        expected = base.detect().violations

        engine = DataQualityEngine(
            ext_schema, sigma, backend="batch", workers=3, executor=executor
        )
        engine.load(small_rows)
        assert engine.detect().violations == expected
        base.close()
        engine.close()

    def test_breakdown_matches_single_threaded(self, ext_schema, sigma, small_rows):
        base = DataQualityEngine(ext_schema, sigma, backend="batch")
        base.load(small_rows)
        base.detect()

        engine = DataQualityEngine(
            ext_schema, sigma, backend="batch", workers=3, executor="serial"
        )
        engine.load(small_rows)
        engine.detect()
        assert engine.backend.breakdown() == base.backend.breakdown()
        base.close()
        engine.close()

    def test_apply_update_routes_through_sharded(self, ext_schema, sigma, small_rows):
        delta = DatasetGenerator(seed=11).generate_rows(60, 25.0)
        deletes = list(range(1, 40))

        base = DataQualityEngine(ext_schema, sigma, backend="batch")
        base.load(small_rows)
        base.detect()
        expected = base.apply_update(insert_rows=delta, delete_tids=deletes)

        engine = DataQualityEngine(
            ext_schema, sigma, backend="batch", workers=3, executor="serial"
        )
        engine.load(small_rows)
        engine.detect()
        result = engine.apply_update(insert_rows=delta, delete_tids=deletes)

        assert result.violations == expected.violations
        assert not result.incremental  # sharded recomputes, never maintains
        base.close()
        engine.close()

    def test_detect_sharded_helper(self, ext_schema, sigma, small_rows):
        from repro.core import Relation

        relation = Relation(ext_schema, small_rows)
        expected = sigma.violations(relation)
        got = detect_sharded(relation, sigma, delegate="naive", workers=3, executor="serial")
        assert got == expected

    def test_empty_relation_detects_clean(self, ext_schema, sigma):
        engine = DataQualityEngine(ext_schema, sigma, backend="batch", workers=4)
        assert engine.detect().clean
        engine.close()

    def test_empty_lhs_fd_is_summary_merged_exactly(self, ext_schema):
        """X = ∅ means one global group spanning every shard.

        The single-pass plan splits the group round-robin and reconstructs
        its violations through the cross-shard summary merge — no shard can
        witness them alone, and none may be dropped.
        """
        from repro.core import ECFD, ECFDSet

        phi = ECFD(ext_schema, lhs=[], rhs=["CT"], tableau=[({}, {"CT": "_"})])
        sigma = ECFDSet([phi])
        rows = DatasetGenerator(seed=13).generate_rows(40, 0.0)

        single = DataQualityEngine(ext_schema, sigma, backend="naive", workers=1)
        single.load(rows)
        reference = single.detect()
        assert not reference.clean  # mixed CT values violate ∅ -> CT

        for executor in ("serial", "process"):
            sharded = DataQualityEngine(
                ext_schema, sigma, backend="naive", workers=4, executor=executor
            )
            sharded.load(rows)
            assert sharded.detect().violations == reference.violations
            sharded.close()
        single.close()

    def test_riders_parallelise_alongside_empty_lhs_fd(self, ext_schema):
        """Regression: riders sharing Σ with an empty-LHS FD used to be dealt
        onto its single-shard colocate_all cluster, serialising
        embarrassingly-parallel work.  Under the single-pass plan the FD is
        summary-merged and the riders spread over every shard."""
        from repro.core import ECFD, ECFDSet

        fd = ECFD(ext_schema, lhs=[], rhs=["CT"], tableau=[({}, {"CT": "_"})])
        rider = ECFD(
            ext_schema,
            lhs=["CT"],
            rhs=[],
            pattern_rhs=["AC"],
            tableau=[({"CT": "_"}, {"AC": {"212", "718"}})],
        )
        sigma = ECFDSet([fd, rider])
        rows = DatasetGenerator(seed=17).generate_rows(80, 10.0)

        single = DataQualityEngine(ext_schema, sigma, backend="naive", workers=1)
        single.load(rows)
        reference = single.detect()

        sharded = DataQualityEngine(
            ext_schema, sigma, backend="naive", workers=4, executor="serial"
        )
        sharded.load(rows)
        assert sharded.detect().violations == reference.violations
        # The work actually fans out: several shard tasks, not one.
        assert len(sharded.backend._build_tasks(False)) > 1
        stats = sharded.partition_stats()
        assert stats["replication_factor"] == 1.0
        assert stats["summary_fragments"] == 1  # the empty-LHS FD
        assert stats["local_fragments"] == 1  # the rider, on every shard
        single.close()
        sharded.close()


class TestBreakdownSinglePass:
    def test_detect_with_breakdown_runs_one_sharded_pass(
        self, ext_schema, sigma, small_rows, monkeypatch
    ):
        """Regression: detect(with_breakdown=True) used to detect twice."""
        engine = DataQualityEngine(
            ext_schema, sigma, backend="batch", workers=2, executor="serial"
        )
        engine.load(small_rows)

        calls = []
        original = type(engine.backend)._detect

        def counting(backend_self, want_breakdown):
            calls.append(want_breakdown)
            return original(backend_self, want_breakdown)

        monkeypatch.setattr(type(engine.backend), "_detect", counting)
        result = engine.detect(with_breakdown=True)
        assert calls == [True]
        assert result.per_constraint  # breakdown actually populated
        engine.close()

    def test_plain_detect_keeps_breakdown_cache(self, ext_schema, sigma, small_rows):
        engine = DataQualityEngine(
            ext_schema, sigma, backend="batch", workers=2, executor="serial"
        )
        engine.load(small_rows)
        first = engine.detect(with_breakdown=True).per_constraint
        engine.detect()  # data unchanged: must not clobber the cache
        assert engine.backend.breakdown() == first
        engine.close()


class TestCustomDelegate:
    def test_runtime_registered_delegate_works_sharded(self, ext_schema, sigma, small_rows):
        """The shard task ships the resolved factory, not the registry name."""
        from repro.engine import NaiveBackend, register_backend, unregister_backend

        register_backend("custom-naive", _CustomNaive)
        try:
            base = DataQualityEngine(ext_schema, sigma, backend="naive")
            base.load(small_rows)
            expected = base.detect().violations

            engine = DataQualityEngine(ext_schema, sigma, backend="custom-naive", workers=3)
            engine.load(small_rows)
            assert engine.backend.delegate == "custom-naive"
            assert engine.detect().violations == expected
            base.close()
            engine.close()
        finally:
            unregister_backend("custom-naive")

    def test_engine_workers_reflects_actual_parallelism(self, ext_schema, sigma):
        engine = DataQualityEngine(ext_schema, sigma, backend="sharded")
        assert engine.workers == 1
        assert engine.backend.workers == 1  # serial single-task, as documented
        engine.close()


from repro.engine import NaiveBackend as _NaiveBackendForCustom


class _CustomNaive(_NaiveBackendForCustom):
    """Top-level (picklable) custom delegate for the registry test."""

    name = "custom-naive"
