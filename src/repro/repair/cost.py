"""Cost model for value-modification repairs.

The paper's conclusion lists "algorithms for eliminating eCFD violations and
repairing data" as future work; the :mod:`repro.repair` package implements a
first such algorithm in the style of the cost-based value-modification
repairs of Bohannon et al. (SIGMOD 2005), which the paper cites as the
standard approach for CFD-era constraints.

A repair is a sequence of *cell changes*: ``(tid, attribute, old, new)``.
Its cost is the (weighted) number of changed cells; attribute weights let a
user mark some columns as more trustworthy than others (changing a trusted
column costs more).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterable, Mapping

from repro.core.schema import Value

__all__ = ["CellChange", "RepairCostModel"]


@dataclass(frozen=True)
class CellChange:
    """One modified cell of a repair."""

    tid: int
    attribute: str
    old_value: Value
    new_value: Value


@dataclass
class RepairCostModel:
    """Weighted cell-count cost of a repair.

    Parameters
    ----------
    attribute_weights:
        Cost of changing one cell of each attribute; attributes not listed
        cost ``default_weight``.
    default_weight:
        Weight used for attributes without an explicit entry.
    """

    attribute_weights: Mapping[str, float] = field(default_factory=dict)
    default_weight: float = 1.0

    def cell_cost(self, attribute: str) -> float:
        """Cost of changing one cell of ``attribute``."""
        return float(self.attribute_weights.get(attribute, self.default_weight))

    def cost(self, changes: Iterable[CellChange]) -> float:
        """Total cost of a sequence of cell changes."""
        return sum(self.cell_cost(change.attribute) for change in changes)
