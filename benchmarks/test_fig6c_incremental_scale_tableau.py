"""Fig. 6(c): INCDETECT vs BATCHDETECT as the tableau size |Tp| grows.

Paper setting: |D| = 100k, |ΔD⁺| = |ΔD⁻| = 10k, the selected eCFD's tableau
swept from 50 to 500.  Expected shape: both grow roughly linearly in |Tp|,
INCDETECT staying below BATCHDETECT.
"""

import pytest

from conftest import (
    BENCH_SIZE,
    dataset_rows,
    prepared_batch_detector,
    prepared_incremental_detector,
    sweep,
    update_batch,
    workload_with_tableau,
)

TABLEAU_SIZES = sweep([50, 100, 200, 300, 400, 500])
UPDATE_SIZE = max(BENCH_SIZE // 10, 50)


@pytest.mark.parametrize("tableau_size", TABLEAU_SIZES)
def test_fig6c_incdetect_scalability_in_tableau(benchmark, tableau_size):
    rows = dataset_rows(BENCH_SIZE)
    sigma = workload_with_tableau(tableau_size)
    batch = update_batch(len(rows), UPDATE_SIZE)

    def setup():
        return (prepared_incremental_detector(rows, sigma),), {}

    def run(detector):
        detector.delete_tuples(batch.delete_tids)
        return detector.insert_tuples(list(batch.insert_rows))

    violations = benchmark.pedantic(run, setup=setup, rounds=1, iterations=1)
    benchmark.extra_info["tableau_size"] = tableau_size
    benchmark.extra_info["dirty"] = len(violations)


@pytest.mark.parametrize("tableau_size", TABLEAU_SIZES)
def test_fig6c_batchdetect_after_update_in_tableau(benchmark, tableau_size):
    rows = dataset_rows(BENCH_SIZE)
    sigma = workload_with_tableau(tableau_size)
    batch = update_batch(len(rows), UPDATE_SIZE)

    def setup():
        detector = prepared_batch_detector(rows, sigma)
        detector.detect()
        detector.database.delete_tuples(batch.delete_tids)
        detector.database.insert_tuples(list(batch.insert_rows))
        return (detector,), {}

    def run(detector):
        return detector.detect()

    violations = benchmark.pedantic(run, setup=setup, rounds=1, iterations=1)
    benchmark.extra_info["tableau_size"] = tableau_size
    benchmark.extra_info["dirty"] = len(violations)
