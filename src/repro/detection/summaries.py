"""Embedded-FD group-summary emission (the shard side of single-pass sharding).

Single-pass sharded detection (:mod:`repro.parallel`) ships every tuple to
exactly one shard, so a fragment whose LHS is not the shard key cannot
witness its multi-tuple violations locally — an ``X``-group may be split
across shards.  Each shard therefore emits, per such fragment, a compact
**group summary**

    (cid, xv)  →  (multiset of yv projections, witness tids)

where ``xv`` / ``yv`` are a matching tuple's projections on the fragment's
LHS / RHS attributes.  Summaries are sufficient statistics for the
embedded-FD semantics: a group violates ``X → Y`` iff the union of its
per-shard yv multisets holds at least two distinct values, and the
violating tuples are exactly the union of the witness tids.  The
coordinator-side merge lives in :mod:`repro.parallel.summary`; this module
owns the *emission* primitives every detector's ``fd_group_summary`` hook
shares, so shards ship aggregated groups instead of raw rows.

The yv side is a multiset (value → count), not a set: the incremental
lanes emit summary *deltas* (:func:`summary_delta`) and a deleted tuple
must only retire a yv value when its last witness disappears.

Wire formats (plain dicts/tuples, picklable across process pools):

``Summary``
    ``{global_cid: {xv: ({yv: count}, [tids])}}`` — one shard's full
    contribution for its current rows.
``SummaryDelta``
    ``{global_cid: {xv: ({yv: signed_count}, [added_tids], [removed_tids])}}``
    — the contribution change of one routed update slice.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Mapping, Sequence

from repro.core.ecfd import ECFD
from repro.exceptions import DetectionError

__all__ = [
    "Summary",
    "SummaryDelta",
    "merge_summaries",
    "summarize_rows",
    "summary_delta",
    "accumulate_group",
]

#: One shard's full per-fragment group summary (see module docstring).
Summary = dict[int, dict[tuple, tuple[dict, list]]]
#: One routed update's signed summary contribution change.
SummaryDelta = dict[int, dict[tuple, tuple[dict, list, list]]]


def _single_pattern(fragment: ECFD) -> ECFD:
    if len(fragment.tableau) != 1:
        raise DetectionError(
            "group summaries are emitted per normalized single-pattern "
            f"fragment; got a tableau of {len(fragment.tableau)} patterns"
        )
    return fragment


def _lhs_matcher(
    fragment: ECFD, text_constants: bool
) -> Callable[[Mapping[str, str]], bool]:
    """The LHS-match predicate a summary emission uses for one fragment.

    ``text_constants=False`` is the reference Python semantics
    (:meth:`PatternTuple.matches_lhs`) — what the naive detector evaluates.
    ``text_constants=True`` mirrors the SQL encoding instead, which compares
    *stringified* pattern constants against the text-stored data (an int
    constant ``212`` matches the stored ``'212'``).  Every emission feeding
    one coordinator store must use the same delegate's semantics — mixing
    them leaves ghost witnesses that deltas can never retire.
    """
    pattern = _single_pattern(fragment).tableau[0]
    if not text_constants:
        return pattern.matches_lhs
    checks: list[tuple[str, frozenset[str], bool]] = []
    for attribute in fragment.lhs:
        entry = pattern.lhs_entry(attribute)
        if entry.is_wildcard:
            continue
        constants = frozenset(str(value) for value in entry.constants())
        negate = entry.to_text().startswith("!")  # complement set
        checks.append((attribute, constants, negate))

    def matches(row: Mapping[str, str]) -> bool:
        for attribute, constants, negate in checks:
            if (str(row[attribute]) in constants) == negate:
                return False
        return True

    return matches


def accumulate_group(
    groups: dict[tuple, tuple[dict, list]], xv: tuple, yv: tuple, tid: int
) -> None:
    """Fold one matching tuple's projections into a fragment's group map."""
    counts, tids = groups.setdefault(xv, ({}, []))
    counts[yv] = counts.get(yv, 0) + 1
    tids.append(tid)


def summarize_rows(
    fragments: Sequence[tuple[int, ECFD]],
    rows: Iterable[tuple[int, Mapping[str, str]]],
) -> Summary:
    """Summarise ``(tid, row)`` pairs under every fragment's embedded FD.

    The generic emission path (used by the naive detector and by backends
    without a SQL substrate): one pattern match per (row, fragment) pair —
    the same per-tuple work a whole-relation pass spends on the fragment,
    minus the cross-tuple grouping, which the coordinator performs on the
    far smaller summary.  The SQL detectors override this with a pushed-down
    scan (:func:`repro.detection.sqlgen.summary_scan_query`).
    """
    summary: Summary = {cid: {} for cid, _ in fragments}
    matchers = [
        (cid, fragment, _single_pattern(fragment).tableau[0].matches_lhs)
        for cid, fragment in fragments
    ]
    for tid, row in rows:
        for cid, fragment, matches_lhs in matchers:
            if not matches_lhs(row):
                continue
            accumulate_group(
                summary[cid],
                tuple(row[a] for a in fragment.lhs),
                tuple(row[a] for a in fragment.rhs),
                tid,
            )
    return summary


def merge_summaries(summaries: Iterable[Summary]) -> Summary:
    """Merge several shards' full summaries into one partial summary.

    The reduce stage of the remote fabric: a worker hosting several shard
    lanes folds their bootstrap summaries *worker-side* and ships one
    merged partial, so the coordinator receives ``O(workers)`` summaries
    instead of ``O(shards)`` — the empty-LHS worst case (witness sets of
    size ``O(|D|)``) crosses the network once per worker, not once per
    shard.  Exact by construction: shards partition the relation, so yv
    counts add and witness-tid lists concatenate without collision, and
    folding the merged partial into a :class:`~repro.parallel.summary.SummaryStore`
    lands on the same state as folding each input in turn.
    """
    merged: Summary = {}
    for summary in summaries:
        for cid, groups in summary.items():
            slot = merged.setdefault(cid, {})
            for xv, (counts, tids) in groups.items():
                merged_counts, merged_tids = slot.setdefault(xv, ({}, []))
                for yv, count in counts.items():
                    merged_counts[yv] = merged_counts.get(yv, 0) + count
                merged_tids.extend(tids)
    return merged


def summary_delta(
    fragments: Sequence[tuple[int, ECFD]],
    deleted: Sequence[tuple[int, Mapping[str, str]]],
    inserted: Sequence[tuple[int, Mapping[str, str]]],
    text_constants: bool = False,
) -> SummaryDelta:
    """The signed summary contribution of one update slice.

    Both deletions and insertions arrive as ``(tid, row)`` pairs — a deleted
    tuple's values are needed to know *which* group loses a witness, so the
    caller resolves them before the tuple is dropped from storage.  Cost is
    proportional to the delta, never to the shard: this is what the stateful
    INCDETECT lanes emit alongside their maintained flags.

    ``text_constants`` selects the LHS-match semantics (see
    :func:`_lhs_matcher`) and must agree with the semantics the shard's
    *full* summaries were emitted under: ``True`` for SQL-backed delegates
    (their pushed-down scan stringifies pattern constants exactly like the
    encoding tables), ``False`` for the reference Python semantics.
    """
    delta: SummaryDelta = {}
    for cid, fragment in fragments:
        matches_lhs = _lhs_matcher(fragment, text_constants)
        groups: dict[tuple, tuple[dict, list, list]] = {}
        for sign, pairs in ((-1, deleted), (1, inserted)):
            for tid, row in pairs:
                if not matches_lhs(row):
                    continue
                xv = tuple(row[a] for a in fragment.lhs)
                yv = tuple(row[a] for a in fragment.rhs)
                counts, added, removed = groups.setdefault(xv, ({}, [], []))
                counts[yv] = counts.get(yv, 0) + sign
                (added if sign > 0 else removed).append(tid)
        if groups:
            delta[cid] = groups
    return delta
