"""Violation records and violation sets.

Section V of the paper represents violations by extending the data schema
with two Boolean attributes:

* ``SV`` ("single-tuple violation") — the tuple violates the *pattern
  constraint* of some eCFD all by itself: it matches the LHS pattern but its
  RHS / Yp values do not match the RHS pattern;
* ``MV`` ("multiple-tuple violation") — the tuple participates in a
  violation of the *embedded FD* of some eCFD: it matches the LHS pattern,
  and there is another matching tuple that agrees on ``X`` but differs on
  ``Y``.

A tuple belongs to the violation set ``vio(D)`` iff ``SV = 1`` or ``MV = 1``.

This module defines explicit record types for both kinds (so the naive
detector, the analyses and the repair extension can report *why* a tuple is
dirty, not only *that* it is), plus :class:`ViolationSet`, the uniform
result object returned by every detector in the library and compared by the
equivalence tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterable, Iterator

from repro.core.schema import Value

__all__ = [
    "SingleTupleViolation",
    "MultiTupleViolation",
    "ViolationSet",
]


@dataclass(frozen=True)
class SingleTupleViolation:
    """One tuple violating the pattern constraint of one pattern tuple.

    Attributes
    ----------
    tid:
        Identifier of the offending data tuple.
    constraint_id:
        Identifier of the (single-pattern) eCFD whose pattern constraint is
        violated — the ``CID`` of the SQL encoding.
    attribute:
        A RHS / Yp attribute whose value fails to match, for diagnostics.
        ``None`` when the caller did not track the specific attribute.
    """

    tid: int
    constraint_id: int
    attribute: str | None = None


@dataclass(frozen=True)
class MultiTupleViolation:
    """A group of tuples jointly violating an embedded FD.

    Attributes
    ----------
    constraint_id:
        Identifier of the (single-pattern) eCFD whose embedded FD is violated.
    lhs_values:
        The shared ``X`` value vector of the group (in the eCFD's LHS
        attribute order).
    tids:
        Identifiers of every tuple in the offending group.
    """

    constraint_id: int
    lhs_values: tuple[Value, ...]
    tids: frozenset[int]


class ViolationSet:
    """The violation set ``vio(D)`` of a database w.r.t. a set of eCFDs.

    The object stores both the per-tuple SV/MV flags (the paper's uniform
    representation) and the detailed violation records that produced them.
    Two violation sets compare equal when their SV and MV tid-sets are equal
    — detailed records may legitimately differ between detectors (e.g. the
    SQL detectors do not report which attribute failed to match).
    """

    def __init__(
        self,
        single: Iterable[SingleTupleViolation] = (),
        multi: Iterable[MultiTupleViolation] = (),
    ):
        self._single: list[SingleTupleViolation] = []
        self._multi: list[MultiTupleViolation] = []
        self._sv_tids: set[int] = set()
        self._mv_tids: set[int] = set()
        for record in single:
            self.add_single(record)
        for record in multi:
            self.add_multi(record)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_single(self, record: SingleTupleViolation) -> None:
        """Record a single-tuple violation."""
        self._single.append(record)
        self._sv_tids.add(record.tid)

    def add_multi(self, record: MultiTupleViolation) -> None:
        """Record a multiple-tuple (embedded-FD) violation."""
        self._multi.append(record)
        self._mv_tids.update(record.tids)

    @classmethod
    def from_flags(cls, sv_tids: Iterable[int], mv_tids: Iterable[int]) -> "ViolationSet":
        """Build a violation set directly from SV / MV tid collections.

        Used by the SQL detectors, which read the flags back from the
        database rather than keeping per-record detail.
        """
        result = cls()
        result._sv_tids = set(sv_tids)
        result._mv_tids = set(mv_tids)
        return result

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def sv_tids(self) -> frozenset[int]:
        """Tuple identifiers with ``SV = 1``."""
        return frozenset(self._sv_tids)

    @property
    def mv_tids(self) -> frozenset[int]:
        """Tuple identifiers with ``MV = 1``."""
        return frozenset(self._mv_tids)

    @property
    def violating_tids(self) -> frozenset[int]:
        """Identifiers of all tuples in ``vio(D)`` (``SV = 1`` or ``MV = 1``)."""
        return frozenset(self._sv_tids | self._mv_tids)

    @property
    def single_records(self) -> tuple[SingleTupleViolation, ...]:
        """Detailed single-tuple violation records (possibly empty for SQL detectors)."""
        return tuple(self._single)

    @property
    def multi_records(self) -> tuple[MultiTupleViolation, ...]:
        """Detailed multiple-tuple violation records (possibly empty for SQL detectors)."""
        return tuple(self._multi)

    def is_clean(self) -> bool:
        """``True`` when no tuple violates any constraint."""
        return not self._sv_tids and not self._mv_tids

    def __contains__(self, tid: object) -> bool:
        return tid in self._sv_tids or tid in self._mv_tids

    def __len__(self) -> int:
        return len(self.violating_tids)

    def __iter__(self) -> Iterator[int]:
        return iter(sorted(self.violating_tids))

    # ------------------------------------------------------------------
    # Comparison / combination
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if isinstance(other, ViolationSet):
            return self.sv_tids == other.sv_tids and self.mv_tids == other.mv_tids
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.sv_tids, self.mv_tids))

    def merge(self, other: "ViolationSet") -> "ViolationSet":
        """The union of two violation sets (flags and records)."""
        merged = ViolationSet(self._single + list(other._single), self._multi + list(other._multi))
        merged._sv_tids |= self._sv_tids | other._sv_tids
        merged._mv_tids |= self._mv_tids | other._mv_tids
        return merged

    def update(self, other: "ViolationSet") -> None:
        """In-place union with ``other`` (flags and records).

        The accumulation primitive of the sharded detector: folding many
        per-shard sets through :meth:`merge` would copy the growing tid-sets
        once per shard, whereas ``update`` is linear in ``other`` alone.
        """
        self._single.extend(other._single)
        self._multi.extend(other._multi)
        self._sv_tids |= other._sv_tids
        self._mv_tids |= other._mv_tids

    def summary(self) -> dict[str, int]:
        """Counts used by the Fig. 7(b) experiment: #SV, #MV and #dirty tuples."""
        return {
            "sv": len(self._sv_tids),
            "mv": len(self._mv_tids),
            "dirty": len(self.violating_tids),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ViolationSet(sv={len(self._sv_tids)}, mv={len(self._mv_tids)}, "
            f"dirty={len(self.violating_tids)})"
        )
