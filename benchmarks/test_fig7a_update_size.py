"""Fig. 7(a): INCDETECT vs BATCHDETECT as the update size |ΔD| grows.

Paper setting: |D| = 100k, noise = 5%, |Tp| = 10, |ΔD⁺| = |ΔD⁻| swept from
2k to 12k and then from 20k to 60k (so up to 60% of the data is replaced).
Expected shape: INCDETECT wins clearly for small updates, the gap narrows as
the update grows, and BATCHDETECT overtakes when roughly half of the data is
updated.
"""

import pytest

from conftest import (
    BENCH_SIZE,
    dataset_rows,
    incremental_engine,
    sweep,
    update_batch,
    updated_batch_engine,
)

#: Update sizes as fractions of |D|, covering the paper's 2%..60% range.
UPDATE_FRACTIONS = sweep([0.02, 0.05, 0.1, 0.2, 0.4, 0.6])


@pytest.mark.parametrize("fraction", UPDATE_FRACTIONS)
def test_fig7a_incdetect_by_update_size(benchmark, fraction, base_workload):
    rows = dataset_rows(BENCH_SIZE)
    batch = update_batch(len(rows), int(BENCH_SIZE * fraction))

    def setup():
        return (incremental_engine(rows, base_workload),), {}

    def run(engine):
        # Deletions then insertions, maintained by one INCDETECT pass each.
        # Timed through the facade deliberately: apply_update is the
        # production hot path, so its bookkeeping is part of the measurement.
        return engine.apply_update(batch)

    result = benchmark.pedantic(run, setup=setup, rounds=1, iterations=1)
    benchmark.extra_info["update_fraction"] = fraction
    benchmark.extra_info["update_size"] = batch.insert_count
    benchmark.extra_info["dirty"] = result.dirty_count


@pytest.mark.parametrize("fraction", UPDATE_FRACTIONS)
def test_fig7a_batchdetect_by_update_size(benchmark, fraction, base_workload):
    rows = dataset_rows(BENCH_SIZE)
    batch = update_batch(len(rows), int(BENCH_SIZE * fraction))

    def setup():
        return (updated_batch_engine(rows, batch, base_workload),), {}

    def run(engine):
        return engine.detect()

    result = benchmark.pedantic(run, setup=setup, rounds=1, iterations=1)
    benchmark.extra_info["update_fraction"] = fraction
    benchmark.extra_info["update_size"] = batch.insert_count
    benchmark.extra_info["dirty"] = result.dirty_count
