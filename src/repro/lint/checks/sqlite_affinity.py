"""RPL005 — SQLite thread affinity.

SQLite connections are thread-affine; the fabric's whole execution model
(one pinned lane thread per shard state) exists to honor that.  Two
sub-checks over ``src/`` and ``benchmarks/``:

* ``sqlite3`` is imported/used only in the sanctioned storage module;
* a name bound from ``sqlite3.connect(...)`` (or ``*.connect(...)`` on
  a sqlite3 attribute) is never referenced inside a lambda or nested
  function in the same frame — a closure is exactly how a connection
  leaks onto another executor's thread.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.lint.astutil import call_name, iter_function_defs
from repro.lint.model import SourceFile, Violation
from repro.lint.project import ProjectIndex

CODE = "RPL005"

#: The only modules allowed to touch sqlite3 directly.
SANCTIONED_SQLITE_MODULES = frozenset({"src/repro/detection/database.py"})


def _sqlite_conn_names(scope: ast.AST) -> set[str]:
    names: set[str] = set()
    for node in ast.walk(scope):
        if (
            isinstance(node, ast.Assign)
            and isinstance(node.value, ast.Call)
            and call_name(node.value) == "sqlite3.connect"
        ):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
    return names


def check_file(file: SourceFile, index: ProjectIndex) -> Iterator[Violation]:
    if not (file.in_src or file.is_benchmark):
        return
    sanctioned = file.rel in SANCTIONED_SQLITE_MODULES
    if not sanctioned:
        for node in ast.walk(file.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.split(".")[0] == "sqlite3":
                        yield Violation(
                            CODE,
                            file.rel,
                            node.lineno,
                            node.col_offset,
                            "sqlite3 imported outside the sanctioned storage "
                            "module — route storage through "
                            "detection/database.py",
                        )
            elif isinstance(node, ast.ImportFrom):
                if (node.module or "").split(".")[0] == "sqlite3":
                    yield Violation(
                        CODE,
                        file.rel,
                        node.lineno,
                        node.col_offset,
                        "sqlite3 imported outside the sanctioned storage "
                        "module — route storage through detection/database.py",
                    )

    # Closure-capture check applies everywhere, sanctioned module included:
    # even database.py must not hand its connection to another thread.
    for func in iter_function_defs(file.tree):
        conn_names = _sqlite_conn_names(func)
        if not conn_names:
            continue
        for node in ast.walk(func):
            inner: ast.AST | None = None
            if isinstance(node, ast.Lambda):
                inner = node
            elif (
                isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node is not func
            ):
                inner = node
            if inner is None:
                continue
            for ref in ast.walk(inner):
                if isinstance(ref, ast.Name) and ref.id in conn_names:
                    yield Violation(
                        CODE,
                        file.rel,
                        ref.lineno,
                        ref.col_offset,
                        f"sqlite3 connection {ref.id!r} captured in a "
                        "closure — connections are thread-affine and must "
                        "not escape the frame that opened them",
                    )
