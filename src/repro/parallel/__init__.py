"""Sharded, multi-core violation detection.

* :mod:`repro.parallel.partition` — partition-key extraction from eCFD
  tableaux and deterministic hash partitioning of relations;
* :mod:`repro.parallel.sharded` — the ``"sharded"`` engine backend, which
  fans any delegate detector out over shared-nothing shards in a process or
  thread pool and merges the per-shard violation sets exactly.
"""

from repro.parallel.partition import (
    PartitionCluster,
    extract_partition_plan,
    partition_rows,
    plan_partitions,
    route_delta,
    shard_index,
)
from repro.parallel.sharded import DEFAULT_EXECUTOR, ShardedBackend, detect_sharded

__all__ = [
    "DEFAULT_EXECUTOR",
    "PartitionCluster",
    "ShardedBackend",
    "detect_sharded",
    "extract_partition_plan",
    "partition_rows",
    "plan_partitions",
    "route_delta",
    "shard_index",
]
