"""Boolean expression AST used by the MAXGSAT substrate.

Section IV of the paper reduces the maximum satisfiable subset problem for
eCFDs (MAXSS) to *Maximum Generalized Satisfiability* (MAXGSAT, Papadimitriou
1994): given a set Φ of arbitrary Boolean expressions, find a truth
assignment satisfying as many of them as possible.  "Generalized" means the
expressions are not restricted to clauses, so we need a small general
Boolean AST rather than a CNF data structure.

The AST is deliberately tiny: variables, constants, negation, conjunction
and disjunction, plus implication as sugar (the reduction uses
``x(i, a) -> ¬x(i, b)`` formulas).  Expressions are immutable and hashable;
evaluation takes a truth assignment (a mapping from variable name to bool).

Helper constructors :func:`conjoin` / :func:`disjoin` flatten their
arguments and simplify the empty cases (empty conjunction = TRUE, empty
disjunction = FALSE), which keeps the reduction code readable.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from collections.abc import Iterable, Mapping, Sequence

__all__ = [
    "Expression",
    "Var",
    "Const",
    "Not",
    "And",
    "Or",
    "TRUE",
    "FALSE",
    "implies_expr",
    "conjoin",
    "disjoin",
]


class Expression(ABC):
    """Base class of Boolean expressions."""

    __slots__ = ()

    @abstractmethod
    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        """Evaluate under ``assignment`` (missing variables default to False)."""

    @abstractmethod
    def variables(self) -> frozenset[str]:
        """The set of variable names occurring in the expression."""

    # Operator sugar so the reduction code reads naturally.
    def __and__(self, other: "Expression") -> "Expression":
        return conjoin([self, other])

    def __or__(self, other: "Expression") -> "Expression":
        return disjoin([self, other])

    def __invert__(self) -> "Expression":
        return Not(self)


@dataclass(frozen=True)
class Var(Expression):
    """A propositional variable, identified by name."""

    name: str

    __slots__ = ("name",)

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        return bool(assignment.get(self.name, False))

    def variables(self) -> frozenset[str]:
        return frozenset({self.name})

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Const(Expression):
    """A Boolean constant."""

    value: bool

    __slots__ = ("value",)

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        return self.value

    def variables(self) -> frozenset[str]:
        return frozenset()

    def __str__(self) -> str:
        return "true" if self.value else "false"


TRUE = Const(True)
FALSE = Const(False)


@dataclass(frozen=True)
class Not(Expression):
    """Negation."""

    operand: Expression

    __slots__ = ("operand",)

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        return not self.operand.evaluate(assignment)

    def variables(self) -> frozenset[str]:
        return self.operand.variables()

    def __str__(self) -> str:
        return f"¬({self.operand})"


@dataclass(frozen=True)
class And(Expression):
    """Conjunction of zero or more operands (empty conjunction is true)."""

    operands: tuple[Expression, ...]

    __slots__ = ("operands",)

    def __init__(self, operands: Iterable[Expression]):
        object.__setattr__(self, "operands", tuple(operands))

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        return all(op.evaluate(assignment) for op in self.operands)

    def variables(self) -> frozenset[str]:
        result: frozenset[str] = frozenset()
        for op in self.operands:
            result |= op.variables()
        return result

    def __str__(self) -> str:
        if not self.operands:
            return "true"
        return "(" + " ∧ ".join(str(op) for op in self.operands) + ")"


@dataclass(frozen=True)
class Or(Expression):
    """Disjunction of zero or more operands (empty disjunction is false)."""

    operands: tuple[Expression, ...]

    __slots__ = ("operands",)

    def __init__(self, operands: Iterable[Expression]):
        object.__setattr__(self, "operands", tuple(operands))

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        return any(op.evaluate(assignment) for op in self.operands)

    def variables(self) -> frozenset[str]:
        result: frozenset[str] = frozenset()
        for op in self.operands:
            result |= op.variables()
        return result

    def __str__(self) -> str:
        if not self.operands:
            return "false"
        return "(" + " ∨ ".join(str(op) for op in self.operands) + ")"


def implies_expr(antecedent: Expression, consequent: Expression) -> Expression:
    """The implication ``antecedent -> consequent`` as ``¬a ∨ c``."""
    return disjoin([Not(antecedent), consequent])


def conjoin(operands: Sequence[Expression]) -> Expression:
    """Conjunction with flattening and constant simplification."""
    flattened: list[Expression] = []
    for op in operands:
        if isinstance(op, Const):
            if not op.value:
                return FALSE
            continue
        if isinstance(op, And):
            flattened.extend(op.operands)
        else:
            flattened.append(op)
    if not flattened:
        return TRUE
    if len(flattened) == 1:
        return flattened[0]
    return And(flattened)


def disjoin(operands: Sequence[Expression]) -> Expression:
    """Disjunction with flattening and constant simplification."""
    flattened: list[Expression] = []
    for op in operands:
        if isinstance(op, Const):
            if op.value:
                return TRUE
            continue
        if isinstance(op, Or):
            flattened.extend(op.operands)
        else:
            flattened.append(op)
    if not flattened:
        return FALSE
    if len(flattened) == 1:
        return flattened[0]
    return Or(flattened)
