"""The RDBMS substrate: a thin SQLite wrapper used by the SQL detectors.

The detection algorithms of Section V are *SQL-generation* algorithms: the
paper's point is that a fixed pair of SQL queries (plus a handful of update
statements) detects all violations of an arbitrary set of eCFDs, so the work
can be pushed into any RDBMS.  The authors ran a commercial DBMS; this
reproduction uses SQLite through the standard-library :mod:`sqlite3` module,
which preserves the property that matters (everything is expressed in SQL
executed by the database engine) while remaining laptop-friendly and
dependency-free.

:class:`ECFDDatabase` owns the connection and the data table:

* the data table is named after the relation schema and has an integer
  primary key ``tid`` (matching the tuple identifiers of
  :class:`~repro.core.instance.Relation`), one ``TEXT`` column per attribute
  and the two violation flags ``SV`` / ``MV`` of Section V;
* helpers load in-memory relations or plain dictionaries, read violation
  flags back as a :class:`~repro.core.violations.ViolationSet`, and expose
  a tiny ``execute`` / ``query`` API used by the encoder and the detectors.

All attribute values are stored as text.  The paper's data (cities, area
codes, zip codes, item titles) is string-typed; storing a single type keeps
value comparisons between the data table and the pattern tables exact.
"""

from __future__ import annotations

import sqlite3
from collections.abc import Iterable, Mapping, Sequence

from repro.core.instance import Relation, RelationTuple
from repro.core.schema import RelationSchema, Value
from repro.core.violations import ViolationSet
from repro.exceptions import DatabaseError

__all__ = ["ECFDDatabase", "quote_identifier"]

#: Name of the blank marker used by the Q_mv GROUP BY trick (Section V-A):
#: attributes irrelevant to an embedded FD are replaced by this constant,
#: which must not occur in the data.  The paper uses "@".
BLANK = "@"


def quote_identifier(name: str) -> str:
    """Quote an SQL identifier (table or column name) for SQLite."""
    escaped = name.replace('"', '""')
    return f'"{escaped}"'


class ECFDDatabase:
    """A SQLite-backed store for one relation plus the eCFD encoding tables.

    Parameters
    ----------
    schema:
        The relation schema of the data table.
    path:
        SQLite database path; the default ``":memory:"`` keeps everything
        in-process, which is what the tests and benchmarks use.
    """

    def __init__(self, schema: RelationSchema, path: str = ":memory:"):
        self.schema = schema
        self.connection = sqlite3.connect(path)
        self.connection.execute("PRAGMA journal_mode = MEMORY")
        self.connection.execute("PRAGMA synchronous = OFF")
        self._create_data_table()

    # ------------------------------------------------------------------
    # Schema / DDL
    # ------------------------------------------------------------------
    @property
    def table_name(self) -> str:
        """Name of the data table (the relation name of the schema)."""
        return self.schema.name

    def _create_data_table(self) -> None:
        columns = ", ".join(
            f"{quote_identifier(a)} TEXT" for a in self.schema.attribute_names
        )
        self.connection.execute(
            f"CREATE TABLE IF NOT EXISTS {quote_identifier(self.table_name)} ("
            f"tid INTEGER PRIMARY KEY, {columns}, SV INTEGER NOT NULL DEFAULT 0, "
            f"MV INTEGER NOT NULL DEFAULT 0)"
        )
        self.connection.commit()

    # ------------------------------------------------------------------
    # Loading data
    # ------------------------------------------------------------------
    def load_relation(self, relation: Relation) -> int:
        """Load an in-memory relation, preserving its tuple identifiers.

        Returns the number of rows inserted.
        """
        if relation.schema != self.schema:
            raise DatabaseError(
                f"relation over {relation.schema.name!r} cannot be loaded into a database "
                f"for {self.schema.name!r}"
            )
        rows = [
            (t.tid, *[str(t[a]) for a in self.schema.attribute_names])
            for t in relation.tuples()
        ]
        return self._insert_rows(rows)

    def insert_tuples(
        self, rows: Iterable[Mapping[str, Value] | RelationTuple], tids: Sequence[int] | None = None
    ) -> list[int]:
        """Insert rows (dictionaries or tuples) and return their assigned tids.

        When ``tids`` is given it must align with ``rows``; otherwise fresh
        identifiers continuing from the current maximum are assigned.
        """
        materialised = list(rows)
        if tids is None:
            start = self.max_tid() + 1
            assigned = list(range(start, start + len(materialised)))
        else:
            assigned = list(tids)
            if len(assigned) != len(materialised):
                raise DatabaseError("tids and rows must have the same length")
        packed = []
        for tid, row in zip(assigned, materialised):
            packed.append((tid, *[str(row[a]) for a in self.schema.attribute_names]))
        self._insert_rows(packed)
        return assigned

    def _insert_rows(self, rows: list[tuple]) -> int:
        placeholders = ", ".join(["?"] * (len(self.schema) + 1))
        columns = ", ".join(
            ["tid"] + [quote_identifier(a) for a in self.schema.attribute_names]
        )
        self.connection.executemany(
            f"INSERT INTO {quote_identifier(self.table_name)} ({columns}) "
            f"VALUES ({placeholders})",
            rows,
        )
        self.connection.commit()
        return len(rows)

    def update_cells(self, cells: Iterable[tuple[int, str, Value]]) -> int:
        """Overwrite single cells in place; returns the number of updates run.

        ``cells`` yields ``(tid, attribute, value)`` triples, applied in
        order with values stored as text like every other ingestion path.
        Tuple identifiers (and the SV/MV flag columns) are untouched — this
        is the storage primitive of in-place repair.  Updating a tid that
        does not exist raises (matching
        :meth:`repro.core.instance.Relation.replace_cell`) — a silently
        dropped fix would break the cross-backend equivalence discipline.
        """
        count = 0
        for tid, attribute, value in cells:
            if attribute not in self.schema:
                raise DatabaseError(
                    f"cannot update unknown attribute {attribute!r} of "
                    f"{self.schema.name!r}"
                )
            cursor = self.connection.execute(
                f"UPDATE {quote_identifier(self.table_name)} "
                f"SET {quote_identifier(attribute)} = ? WHERE tid = ?",
                (str(value), tid),
            )
            if cursor.rowcount == 0:
                self.connection.rollback()
                raise DatabaseError(
                    f"table {self.table_name!r} has no tuple with tid={tid}"
                )
            count += 1
        self.connection.commit()
        return count

    def delete_tuples(self, tids: Iterable[int]) -> int:
        """Delete the rows with the given identifiers; returns the count removed."""
        tid_list = list(tids)
        self.connection.executemany(
            f"DELETE FROM {quote_identifier(self.table_name)} WHERE tid = ?",
            [(tid,) for tid in tid_list],
        )
        self.connection.commit()
        return len(tid_list)

    # ------------------------------------------------------------------
    # Generic SQL access (used by the encoder and detectors)
    # ------------------------------------------------------------------
    def execute(self, sql: str, parameters: Sequence = ()) -> sqlite3.Cursor:
        """Execute one SQL statement and return the cursor."""
        return self.connection.execute(sql, parameters)

    def executemany(self, sql: str, rows: Iterable[Sequence]) -> None:
        """Execute one SQL statement for many parameter rows."""
        self.connection.executemany(sql, rows)

    def executescript(self, sql: str) -> None:
        """Execute an SQL script (multiple ;-separated statements)."""
        self.connection.executescript(sql)

    def query(self, sql: str, parameters: Sequence = ()) -> list[tuple]:
        """Execute a query and fetch all rows."""
        return self.connection.execute(sql, parameters).fetchall()

    def commit(self) -> None:
        """Commit the current transaction."""
        self.connection.commit()

    def close(self) -> None:
        """Close the underlying connection."""
        self.connection.close()

    def __enter__(self) -> "ECFDDatabase":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Data-table convenience queries
    # ------------------------------------------------------------------
    def count(self) -> int:
        """Number of rows in the data table."""
        [(count,)] = self.query(f"SELECT COUNT(*) FROM {quote_identifier(self.table_name)}")
        return count

    def max_tid(self) -> int:
        """Largest tuple identifier in use (0 when the table is empty)."""
        [(value,)] = self.query(
            f"SELECT COALESCE(MAX(tid), 0) FROM {quote_identifier(self.table_name)}"
        )
        return value

    def all_tids(self) -> list[int]:
        """All tuple identifiers, ascending."""
        return [tid for (tid,) in self.query(
            f"SELECT tid FROM {quote_identifier(self.table_name)} ORDER BY tid"
        )]

    def fetch_row(self, tid: int) -> dict[str, str] | None:
        """The attribute values of one row as a dict, or ``None``."""
        columns = ", ".join(quote_identifier(a) for a in self.schema.attribute_names)
        rows = self.query(
            f"SELECT {columns} FROM {quote_identifier(self.table_name)} WHERE tid = ?",
            (tid,),
        )
        if not rows:
            return None
        return dict(zip(self.schema.attribute_names, rows[0]))

    def to_relation(self) -> Relation:
        """Materialise the data table back into an in-memory relation.

        Tuple identifiers are preserved, so violation sets computed in SQL
        and in memory are directly comparable.
        """
        relation = Relation(self.schema)
        columns = ", ".join(quote_identifier(a) for a in self.schema.attribute_names)
        rows = self.query(
            f"SELECT tid, {columns} FROM {quote_identifier(self.table_name)} ORDER BY tid"
        )
        for tid, *values in rows:
            relation.insert_with_tid(tid, list(values))
        return relation

    def clear(self) -> int:
        """Remove every row from the data table; returns the count removed.

        The encoding and auxiliary tables are left alone — they are
        recomputed by the next detection run.
        """
        removed = self.count()
        self.execute(f"DELETE FROM {quote_identifier(self.table_name)}")
        self.commit()
        return removed

    # ------------------------------------------------------------------
    # Violation flags
    # ------------------------------------------------------------------
    def reset_flags(self) -> None:
        """Set SV = MV = 0 on every row."""
        self.execute(f"UPDATE {quote_identifier(self.table_name)} SET SV = 0, MV = 0")
        self.commit()

    def violations(self) -> ViolationSet:
        """Read the SV / MV flags back as a :class:`ViolationSet`."""
        sv = [tid for (tid,) in self.query(
            f"SELECT tid FROM {quote_identifier(self.table_name)} WHERE SV = 1"
        )]
        mv = [tid for (tid,) in self.query(
            f"SELECT tid FROM {quote_identifier(self.table_name)} WHERE MV = 1"
        )]
        return ViolationSet.from_flags(sv_tids=sv, mv_tids=mv)

    def flag_counts(self) -> dict[str, int]:
        """Counts of SV / MV / dirty rows straight from SQL (Fig. 7(b) series)."""
        [(sv,)] = self.query(
            f"SELECT COUNT(*) FROM {quote_identifier(self.table_name)} WHERE SV = 1"
        )
        [(mv,)] = self.query(
            f"SELECT COUNT(*) FROM {quote_identifier(self.table_name)} WHERE MV = 1"
        )
        [(dirty,)] = self.query(
            f"SELECT COUNT(*) FROM {quote_identifier(self.table_name)} WHERE SV = 1 OR MV = 1"
        )
        return {"sv": sv, "mv": mv, "dirty": dirty}
