"""The data model of the repro lint pass: rules, violations, source files.

A :class:`SourceFile` wraps one parsed module with the project-role
classification the checkers scope on (``src`` engine code vs tests vs
benchmarks) and the line-level ``# reprolint: disable=RPLxxx``
suppressions.  A :class:`Violation` is one finding; its identity for
baseline matching is the ``(code, path, message)`` triple — deliberately
*not* the line number, so baselined findings survive unrelated edits
above them.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path

__all__ = ["Rule", "SourceFile", "Violation"]

_SUPPRESS_RE = re.compile(r"#\s*reprolint:\s*disable=([A-Z0-9,\s]+)")


@dataclass(frozen=True)
class Rule:
    """One lint rule: a stable code plus the catalog strings."""

    code: str
    name: str
    summary: str
    rationale: str


@dataclass(frozen=True)
class Violation:
    """One finding, located at ``path:line:col``."""

    code: str
    path: str
    line: int
    col: int
    message: str

    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.code)

    def baseline_key(self) -> tuple[str, str, str]:
        return (self.code, self.path, self.message)

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def as_json(self) -> dict:
        return {
            "code": self.code,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


class SourceFile:
    """One parsed Python module plus its lint-relevant classification."""

    def __init__(self, path: Path, root: Path, text: str):
        self.path = path
        self.root = root
        try:
            self.rel = path.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            self.rel = path.as_posix()
        self.text = text
        self.lines = text.splitlines()
        self.tree = ast.parse(text, filename=str(path))
        #: line number -> set of rule codes disabled on that line.
        self.suppressions: dict[int, set[str]] = {}
        for lineno, line in enumerate(self.lines, start=1):
            match = _SUPPRESS_RE.search(line)
            if match:
                codes = {c.strip() for c in match.group(1).split(",") if c.strip()}
                self.suppressions.setdefault(lineno, set()).update(codes)

    @classmethod
    def parse(cls, path: Path, root: Path) -> SourceFile:
        return cls(path, root, path.read_text(encoding="utf-8"))

    # -- project-role classification (paths are repo-relative posix) -----
    @property
    def in_src(self) -> bool:
        return self.rel.startswith("src/repro/")

    @property
    def is_test(self) -> bool:
        return self.rel.startswith("tests/")

    @property
    def is_benchmark(self) -> bool:
        return self.rel.startswith("benchmarks/")

    @property
    def module(self) -> str | None:
        """Dotted module name for files under ``src/``, else ``None``."""
        if not self.rel.startswith("src/") or not self.rel.endswith(".py"):
            return None
        dotted = self.rel[len("src/") : -len(".py")].replace("/", ".")
        return dotted.removesuffix(".__init__")

    def suppressed(self, code: str, line: int) -> bool:
        return code in self.suppressions.get(line, ())

    def __repr__(self) -> str:
        return f"SourceFile({self.rel!r})"
