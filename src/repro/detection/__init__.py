"""SQL-based eCFD violation detection (paper Section V), cross-engine.

* :mod:`repro.detection.dialect` — engine-specific SQL idioms
  (:class:`SqlDialect` and the SQLite / DuckDB implementations);
* :mod:`repro.detection.engines` — concrete engines (connections, driver
  imports) behind the abstract :class:`SqlEngine` interface;
* :mod:`repro.detection.database` — the RDBMS substrate (data table over an
  abstract engine);
* :mod:`repro.detection.encoding` — the ``enc`` / constant-table encoding of
  Σ (Fig. 3);
* :mod:`repro.detection.sqlgen` — generation of the ``Q_sv`` / ``Q_mv``
  queries and the flag-update statements (Fig. 4);
* :mod:`repro.detection.batch` — BATCHDETECT;
* :mod:`repro.detection.incremental` — INCDETECT;
* :mod:`repro.detection.naive` — the pure-Python oracle detector.
"""

from repro.detection.batch import BatchDetector
from repro.detection.database import BLANK, ECFDDatabase, quote_identifier
from repro.detection.dialect import (
    DuckDBDialect,
    SQLiteDialect,
    SqlDialect,
    available_dialects,
    get_dialect,
)
from repro.detection.encoding import (
    AUX_TABLE,
    ENC_TABLE,
    MACRO_TABLE,
    ConstraintEncoding,
    encode_constraints,
    install_encoding,
)
from repro.detection.engines import (
    DuckDBEngine,
    SqlEngine,
    SQLiteEngine,
    available_engines,
    create_engine,
    duckdb_available,
)
from repro.detection.incremental import IncrementalDetector
from repro.detection.naive import NaiveDetector
from repro.detection.sqlgen import (
    group_query,
    macro_query,
    qmv_query,
    qsv_query,
    sv_update_statement,
)

__all__ = [
    "AUX_TABLE",
    "BLANK",
    "BatchDetector",
    "ConstraintEncoding",
    "DuckDBDialect",
    "DuckDBEngine",
    "ECFDDatabase",
    "ENC_TABLE",
    "IncrementalDetector",
    "MACRO_TABLE",
    "NaiveDetector",
    "SQLiteDialect",
    "SQLiteEngine",
    "SqlDialect",
    "SqlEngine",
    "available_dialects",
    "available_engines",
    "create_engine",
    "duckdb_available",
    "encode_constraints",
    "get_dialect",
    "group_query",
    "install_encoding",
    "macro_query",
    "qmv_query",
    "qsv_query",
    "quote_identifier",
    "sv_update_statement",
]
