"""Unit tests for the synthetic geography and item catalogues."""

from repro.datagen.geography import CityRecord, area_codes, city_catalog, find_city
from repro.datagen.items import ITEM_TYPES, item_catalog, price_band, titles_by_type


class TestCityCatalog:
    def test_paper_cities_present_verbatim(self):
        catalog = city_catalog()
        albany = find_city("Albany", catalog)
        nyc = find_city("NYC", catalog)
        li = find_city("LI", catalog)
        assert albany is not None and albany.area_codes == ("518",)
        assert nyc is not None and set(nyc.area_codes) == {"212", "718", "646", "347", "917"}
        assert li is not None and set(li.area_codes) == {"516", "631"}
        assert find_city("Troy", catalog).canonical_area_code == "518"
        assert find_city("Atlantis", catalog) is None

    def test_catalog_size_and_determinism(self):
        assert len(city_catalog(300)) == 300
        assert len(city_catalog(50)) == 50
        assert city_catalog(120) == city_catalog(120)

    def test_city_names_unique(self):
        catalog = city_catalog(600)
        names = [c.name for c in catalog]
        assert len(names) == len(set(names))

    def test_synthetic_cities_have_single_area_code(self):
        catalog = city_catalog(100)
        for record in catalog:
            if record.name in {"NYC", "LI"}:
                assert len(record.area_codes) > 1
            else:
                assert len(record.area_codes) == 1

    def test_zip_codes_disjoint_across_cities(self):
        catalog = city_catalog(200)
        seen: set[str] = set()
        for record in catalog:
            assert not (seen & set(record.zip_codes))
            seen.update(record.zip_codes)

    def test_synthetic_area_codes_do_not_collide_with_paper_codes(self):
        reserved = {"518", "212", "718", "646", "347", "917", "516", "631"}
        catalog = city_catalog(400)
        for record in catalog[5:]:
            assert not (set(record.area_codes) & reserved)

    def test_area_codes_mapping(self):
        mapping = area_codes(city_catalog(10))
        assert mapping["Albany"] == ("518",)
        assert len(mapping) == 10


class TestItemCatalog:
    def test_three_types_with_requested_count(self):
        catalog = item_catalog(per_type=50)
        assert len(catalog) == 150
        by_type = titles_by_type(catalog)
        assert set(by_type) == set(ITEM_TYPES)
        assert all(len(titles) == 50 for titles in by_type.values())

    def test_titles_unique_across_catalog(self):
        catalog = item_catalog(per_type=120)
        titles = [record.title for record in catalog]
        assert len(titles) == len(set(titles))

    def test_prices_within_band(self):
        catalog = item_catalog(per_type=80)
        for record in catalog:
            low, high = price_band(record.item_type)
            assert low <= int(record.price) <= high

    def test_determinism(self):
        assert item_catalog(30) == item_catalog(30)
