"""Delta coalescing: same-tid churn merges, tid discipline, bit-exactness.

The service's correctness anchor lives here: the violation state after any
coalesced, batched stream must be **bit-exact** with a single-threaded
``apply_update`` replay of the raw stream.  The randomized equivalence
tests churn hard on purpose — high delete probability over a small live
population forces insert→delete cancellations and delete+reinsert tid
reuse inside every window — and compare flags *and* relation cells against
the raw replay on every executor.
"""

import random

import pytest

from repro.core.schema import cust_ext_schema
from repro.datagen.generator import DatasetGenerator
from repro.datagen.workload import paper_workload
from repro.engine import DataQualityEngine
from repro.service import DeltaCoalescer

SCHEMA = cust_ext_schema()
EXECUTORS = ("serial", "thread", "process")


class TestCoalescerUnit:
    def test_insert_then_delete_cancels(self):
        coalescer = DeltaCoalescer([1, 2, 3])
        (tid,) = coalescer.add(insert_rows=[{"A": "x"}])
        assert tid == 4
        coalescer.add(delete_tids=[tid])
        assert coalescer.pending_ops == 0
        assert coalescer.flush() == []
        assert coalescer.cancelled_inserts == 1

    def test_cancelled_insert_frees_its_tid_for_reuse(self):
        """The raw replay would reuse the freed max; the coalescer must too."""
        coalescer = DeltaCoalescer([1, 2, 3])
        (a,) = coalescer.add(insert_rows=[{"A": "a"}])
        coalescer.add(delete_tids=[a])
        (b,) = coalescer.add(insert_rows=[{"A": "b"}])
        assert b == a == 4

    def test_delete_plus_reinsert_folds_to_value_update(self):
        """Deleting the live max and reinserting lands on the same tid."""
        coalescer = DeltaCoalescer([1, 2, 3])
        coalescer.add(delete_tids=[3])
        (tid,) = coalescer.add(insert_rows=[{"A": "new"}])
        assert tid == 3
        batches = coalescer.flush()
        assert batches == [([3], [{"A": "new"}], [3])]
        assert coalescer.folded_updates == 1

    def test_delete_of_unknown_tid_is_skipped(self):
        coalescer = DeltaCoalescer([1, 2])
        coalescer.add(delete_tids=[99])
        assert coalescer.pending_ops == 0
        assert coalescer.skipped_deletes == 1

    def test_interior_delete_keeps_max_assignment(self):
        coalescer = DeltaCoalescer([1, 2, 3])
        coalescer.add(delete_tids=[1])
        (tid,) = coalescer.add(insert_rows=[{"A": "x"}])
        assert tid == 4  # the max is still live, 1 is not reused

    def test_flush_chunks_deletes_before_inserts(self):
        """A reused tid's delete must ship before its insert, even chunked."""
        coalescer = DeltaCoalescer(range(1, 8))
        coalescer.add(delete_tids=[5, 6, 7])
        assigned = coalescer.add(insert_rows=[{"A": str(i)} for i in range(5)])
        assert assigned == [5, 6, 7, 8, 9]
        batches = coalescer.flush(max_batch=2)
        assert batches[0] == ([5, 6], [], None)
        assert batches[1] == ([7], [], None)
        # All delete chunks precede all insert chunks; insert tids pinned.
        assert [b[2] for b in batches[2:]] == [[5, 6], [7, 8], [9]]
        assert all(not b[0] for b in batches[2:])

    def test_flush_resets_window_but_keeps_counters(self):
        coalescer = DeltaCoalescer([1])
        coalescer.add(delete_tids=[1], insert_rows=[{"A": "x"}])
        assert coalescer.flush()
        assert coalescer.pending_ops == 0
        assert coalescer.flush() == []
        stats = coalescer.stats()
        assert stats["raw_ops"] == 2
        assert stats["flushed_ops"] == 2

    def test_empty_relation_assigns_from_one(self):
        coalescer = DeltaCoalescer()
        assert coalescer.add(insert_rows=[{"A": "x"}]) == [1]


def _raw_stream(rng, base_tids, rows, events, delete_bias=0.55):
    """A churn-heavy raw event stream: ``(delete_tids, insert_rows)`` pairs.

    Tracks the live population exactly like a client of the raw engine
    would, so deletes target live tids (mostly recent ones, to force
    same-window churn) with an occasional stale identifier mixed in.
    """
    live = list(base_tids)
    stream = []
    fresh = iter(rows)
    for _ in range(events):
        deletes, inserts = [], []
        for _ in range(rng.randrange(1, 4)):
            if live and rng.random() < delete_bias:
                # Bias towards the newest tids: that's where cancellations
                # and tid reuse live.
                index = len(live) - 1 - min(rng.randrange(4), len(live) - 1)
                deletes.append(live.pop(index))
            else:
                row = next(fresh)
                inserts.append(row)
                live.append(max(live, default=0) + 1)
        if rng.random() < 0.1:
            deletes.append(10_000 + rng.randrange(100))  # never-live tid
        stream.append((deletes, inserts))
    return stream


def _replay_raw(sigma, base_rows, stream):
    """Single-threaded apply_update replay; returns (flags, cells)."""
    with DataQualityEngine(SCHEMA, sigma, backend="incremental") as engine:
        engine.load(base_rows)
        engine.detect()
        for deletes, inserts in stream:
            engine.apply_update(delete_tids=deletes, insert_rows=inserts)
        flags = engine.backend.detect()
        cells = {t.tid: t.values() for t in engine.to_relation().tuples()}
    return flags, cells


def _replay_coalesced(sigma, base_rows, stream, workers, executor, rng, max_batch):
    """Coalesce the stream in random windows, ship flushes; same snapshot."""
    engine = DataQualityEngine(
        SCHEMA, sigma, backend="incremental", workers=workers, executor=executor
    )
    try:
        engine.load(base_rows)
        engine.backend.ensure_ready()
        coalescer = DeltaCoalescer(engine.tids())
        pending = 0
        for deletes, inserts in stream:
            coalescer.add(deletes, inserts)
            pending += 1
            if rng.random() < 0.4:  # window boundary
                batches = coalescer.flush(max_batch)
                if batches:
                    engine.backend.incremental_update_many(batches)
                pending = 0
        batches = coalescer.flush(max_batch)
        if batches:
            engine.backend.incremental_update_many(batches)
        flags = engine.backend.detect()
        cells = {t.tid: t.values() for t in engine.to_relation().tuples()}
        return flags, cells, coalescer
    finally:
        engine.close()


class TestCoalescedStreamBitExactness:
    """Coalesced + batched replay == raw single-threaded replay, bit for bit."""

    @pytest.mark.parametrize("executor", EXECUTORS)
    @pytest.mark.parametrize("seed", range(3))
    def test_randomized_churn_stream_matches_raw_replay(self, executor, seed):
        rng = random.Random(7000 + seed)
        sigma = paper_workload(SCHEMA)
        base_rows = DatasetGenerator(seed=seed).generate_rows(250, 8.0)
        fresh_rows = DatasetGenerator(seed=100 + seed).generate_rows(400, 12.0)
        stream = _raw_stream(rng, range(1, len(base_rows) + 1), fresh_rows, 40)

        raw_flags, raw_cells = _replay_raw(sigma, base_rows, stream)
        flags, cells, coalescer = _replay_coalesced(
            sigma, base_rows, stream, 3, executor,
            random.Random(7100 + seed), rng.choice([None, 7, 32]),
        )
        assert flags == raw_flags
        assert cells == raw_cells
        # The churn bias must actually exercise the merge rules.
        assert coalescer.cancelled_inserts + coalescer.folded_updates > 0

    def test_single_worker_backend_matches_raw_replay(self):
        """Coalescing is backend-agnostic: plain INCDETECT, no sharding."""
        rng = random.Random(77)
        sigma = paper_workload(SCHEMA)
        base_rows = DatasetGenerator(seed=5).generate_rows(200, 8.0)
        fresh_rows = DatasetGenerator(seed=55).generate_rows(300, 12.0)
        stream = _raw_stream(rng, range(1, len(base_rows) + 1), fresh_rows, 30)

        raw_flags, raw_cells = _replay_raw(sigma, base_rows, stream)
        flags, cells, _ = _replay_coalesced(
            sigma, base_rows, stream, 1, "serial", random.Random(78), 16
        )
        assert flags == raw_flags
        assert cells == raw_cells

    def test_coalescing_ships_less_than_raw(self):
        """The point of the exercise: churn never reaches the lanes."""
        rng = random.Random(9)
        fresh_rows = DatasetGenerator(seed=9).generate_rows(400, 10.0)
        stream = _raw_stream(rng, range(1, 51), fresh_rows, 60, delete_bias=0.65)
        coalescer = DeltaCoalescer(range(1, 51))
        for deletes, inserts in stream:
            coalescer.add(deletes, inserts)
        coalescer.flush()
        stats = coalescer.stats()
        assert stats["flushed_ops"] < stats["raw_ops"]
        assert stats["cancelled_inserts"] > 0
