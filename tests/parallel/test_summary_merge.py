"""Randomized Σ/workload equivalence for the cross-shard summary-merge path.

The single-pass plan routes every tuple to one shard and reconstructs the
multi-tuple violations of non-co-located embedded FDs from merged
``(cid, xv, yv-multiset)`` summaries.  These tests stress the merge with
randomly structured constraint sets — overlapping and disjoint LHS sets,
empty-LHS FDs, pattern-only riders, value-set and complement-set patterns —
over small-domain data (dense groups, plenty of cross-shard splits), and
with deletion-heavy update streams through the stateful INCDETECT lanes.
Every run is compared against single-threaded detection; sharding is an
execution strategy, never a semantics change.
"""

import random

import pytest

from repro.core import ECFD, ECFDSet
from repro.core.patterns import ComplementSet
from repro.core.schema import cust_ext_schema
from repro.engine import DataQualityEngine

SCHEMA = cust_ext_schema()
#: Attributes drawn into random embedded-FD LHS/RHS sets; the small value
#: cardinalities below make their groups dense enough to split across shards.
ATTR_POOL = ["CT", "ZIP", "AC", "ITEM_TYPE", "ITEM_TITLE", "PRICE"]
CARDINALITY = {
    "AC": 5, "PN": 40, "NM": 30, "STR": 25, "CT": 4, "ZIP": 6,
    "ITEM_TYPE": 3, "ITEM_TITLE": 8, "PRICE": 5,
}


def _value(attribute: str, index: int) -> str:
    return f"{attribute.lower()}-{index}"


def _random_rows(rng: random.Random, count: int) -> list[dict]:
    return [
        {
            attribute: _value(attribute, rng.randrange(CARDINALITY[attribute]))
            for attribute in SCHEMA.attribute_names
        }
        for _ in range(count)
    ]


def _random_lhs_pattern(rng: random.Random, attribute: str):
    roll = rng.random()
    if roll < 0.6:
        return "_"
    values = {
        _value(attribute, i)
        for i in rng.sample(range(CARDINALITY[attribute]), k=rng.randint(1, 2))
    }
    if roll < 0.85:
        return values
    return ComplementSet(values)


def _random_sigma(rng: random.Random) -> ECFDSet:
    """3-6 constraints with random LHS overlap structure.

    Embedded FDs (some sharing LHS attributes — co-locatable under one key
    — some disjoint or empty-LHS — summary-merged) plus pattern-only
    riders.
    """
    ecfds = []
    for _ in range(rng.randint(2, 4)):
        lhs = rng.sample(ATTR_POOL, k=rng.choice([0, 1, 1, 1, 2]))
        rhs = [rng.choice([a for a in ATTR_POOL if a not in lhs])]
        tableau = [(
            {a: _random_lhs_pattern(rng, a) for a in lhs},
            {a: "_" for a in rhs},
        )]
        ecfds.append(ECFD(SCHEMA, lhs=lhs, rhs=rhs, tableau=tableau))
    for _ in range(rng.randint(1, 2)):
        lhs = [rng.choice(ATTR_POOL)]
        yp = rng.choice([a for a in ATTR_POOL if a not in lhs])
        allowed = {
            _value(yp, i)
            for i in rng.sample(range(CARDINALITY[yp]), k=rng.randint(1, 3))
        }
        ecfds.append(
            ECFD(
                SCHEMA, lhs=lhs, rhs=[], pattern_rhs=[yp],
                tableau=[({a: _random_lhs_pattern(rng, a) for a in lhs}, {yp: allowed})],
            )
        )
    return ECFDSet(ecfds)


def _reference(sigma: ECFDSet, rows: list[dict], backend: str = "naive"):
    engine = DataQualityEngine(SCHEMA, sigma, backend=backend, workers=1)
    engine.load(rows)
    result = engine.detect()
    engine.close()
    return result


class TestRandomizedDetectionEquivalence:
    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("delegate", ("naive", "batch"))
    def test_sharded_matches_single_threaded(self, seed, delegate):
        rng = random.Random(seed)
        sigma = _random_sigma(rng)
        rows = _random_rows(rng, 250)
        reference = _reference(sigma, rows, backend=delegate)

        engine = DataQualityEngine(
            SCHEMA, sigma, backend=delegate, workers=3, executor="serial"
        )
        engine.load(rows)
        result = engine.detect()
        assert result.violations == reference.violations
        assert engine.partition_stats()["replication_factor"] == 1.0
        engine.close()

    @pytest.mark.parametrize("executor", ("serial", "thread", "process"))
    def test_every_executor_agrees_on_random_sigma(self, executor):
        rng = random.Random(99)
        sigma = _random_sigma(rng)
        rows = _random_rows(rng, 200)
        reference = _reference(sigma, rows, backend="batch")

        engine = DataQualityEngine(
            SCHEMA, sigma, backend="batch", workers=3, executor=executor
        )
        engine.load(rows)
        assert engine.detect().violations == reference.violations
        engine.close()

    def test_empty_lhs_heavy_sigma(self):
        """Several empty-LHS FDs at once: every group spans every shard."""
        sigma = ECFDSet(
            [
                ECFD(SCHEMA, lhs=[], rhs=[a], tableau=[({}, {a: "_"})])
                for a in ("CT", "ZIP", "ITEM_TYPE")
            ]
        )
        rng = random.Random(7)
        rows = _random_rows(rng, 120)
        reference = _reference(sigma, rows)
        engine = DataQualityEngine(
            SCHEMA, sigma, backend="naive", workers=4, executor="serial"
        )
        engine.load(rows)
        assert engine.detect().violations == reference.violations
        stats = engine.partition_stats()
        assert stats["summary_fragments"] == 3 and stats["local_fragments"] == 0
        engine.close()


class TestRandomizedUpdateStreamEquivalence:
    @pytest.mark.parametrize("seed", range(3))
    def test_deletion_heavy_stream_matches_incremental_and_recompute(self, seed):
        """Deletion-heavy update streams through the INCDETECT lanes.

        Heavy deletions exercise the summary store's pruning side (yv
        counts dropping to zero, groups losing their last witness) — the
        direction a set-based (non-multiset) summary would get wrong.
        """
        rng = random.Random(1000 + seed)
        sigma = _random_sigma(rng)
        rows = _random_rows(rng, 240)

        incremental = DataQualityEngine(SCHEMA, sigma, backend="incremental")
        incremental.load(rows)
        incremental.detect()
        recompute = DataQualityEngine(SCHEMA, sigma, backend="batch")
        recompute.load(rows)

        engine = DataQualityEngine(
            SCHEMA, sigma, backend="incremental", workers=3, executor="serial"
        )
        engine.load(rows)
        engine.backend.ensure_ready()
        baseline = engine.backend.full_detect_count

        live = list(range(1, len(rows) + 1))
        next_tid = len(rows) + 1
        for _ in range(4):
            deletes = rng.sample(live, k=min(len(live), rng.randint(30, 50)))
            inserts = _random_rows(rng, rng.randint(0, 10))
            expected = incremental.apply_update(
                delete_tids=deletes, insert_rows=inserts
            )
            redetected = recompute.apply_update(
                delete_tids=deletes, insert_rows=inserts
            )
            result = engine.apply_update(delete_tids=deletes, insert_rows=inserts)
            assert result.incremental
            assert result.violations == expected.violations
            assert result.violations == redetected.violations
            live = [tid for tid in live if tid not in set(deletes)]
            live.extend(range(next_tid, next_tid + len(inserts)))
            next_tid += len(inserts)

        # The read path after the stream is exact and recompute-free.
        assert engine.detect().violations == incremental.detect().violations
        assert engine.backend.full_detect_count == baseline
        incremental.close()
        recompute.close()
        engine.close()

    def test_int_pattern_constants_drain_exactly(self):
        """Regression: int pattern constants on a summary fragment.

        The SQL delegates compare stringified constants against the
        text-stored data (212 matches '212'); the bootstrap summaries come
        from that pushed-down scan, so update deltas must be emitted under
        the *same* semantics.  A Python-side ``in {212, 718}`` match would
        skip every delta for these tuples, leaving ghost witnesses the
        store could never retire."""
        phi = ECFD(
            SCHEMA, lhs=["AC"], rhs=["CT"],
            tableau=[({"AC": {212, 718}}, {"CT": "_"})],
        )
        decoy = ECFD(  # occupies the primary key so phi is summary-merged
            SCHEMA, lhs=["ZIP"], rhs=["NM"],
            tableau=[({"ZIP": "_"}, {"NM": "_"})],
        )
        sigma = ECFDSet([decoy, phi])
        rows = [
            {a: "x" for a in SCHEMA.attribute_names}
            | {"AC": "212", "CT": f"city-{i % 4}", "ZIP": str(i)}
            for i in range(40)
        ]
        reference = DataQualityEngine(SCHEMA, sigma, backend="incremental")
        reference.load(rows)
        reference.detect()
        engine = DataQualityEngine(
            SCHEMA, sigma, backend="incremental", workers=4, executor="serial"
        )
        engine.load(rows)
        engine.backend.ensure_ready()
        assert engine.partition_stats()["summary_fragments"] >= 1

        # Drain the violating AC=212 group completely, batch by batch.
        for start in (1, 21):
            deletes = list(range(start, start + 20))
            expected = reference.apply_update(delete_tids=deletes)
            result = engine.apply_update(delete_tids=deletes)
            assert result.violations == expected.violations
        assert engine.backend._summary_store.witness_count() == 0
        reference.close()
        engine.close()

    def test_same_round_tid_reuse_keeps_witnesses(self):
        """Regression: delete the max tid and insert in one round.

        The ``max(tid) + 1`` discipline re-assigns the freed identifier, and
        the old and new rows can hash to *different* shards — the summary
        store sees a -tid delta from one shard and a +tid delta from
        another, in either order.  Witness counting must keep the reborn
        tuple's membership in the summary-merged global group.
        """
        fd = ECFD(
            SCHEMA, lhs=["ZIP"], rhs=["CT"],
            tableau=[({"ZIP": "_"}, {"CT": "_"})],
        )
        global_fd = ECFD(SCHEMA, lhs=[], rhs=["AC"], tableau=[({}, {"AC": "_"})])
        sigma = ECFDSet([fd, global_fd])
        base = [
            {a: "x" for a in SCHEMA.attribute_names}
            | {"ZIP": str(10000 + i), "CT": f"c{i}", "AC": f"a{i % 3}"}
            for i in range(8)
        ]
        replacement = (
            {a: "y" for a in SCHEMA.attribute_names}
            | {"ZIP": "99999", "CT": "fresh", "AC": "a-new"}
        )

        reference = DataQualityEngine(SCHEMA, sigma, backend="incremental")
        reference.load(base)
        reference.detect()
        engine = DataQualityEngine(
            SCHEMA, sigma, backend="incremental", workers=4, executor="serial"
        )
        engine.load(base)
        engine.backend.ensure_ready()

        # tid 8 dies and is immediately reborn as the replacement row.
        expected = reference.apply_update(delete_tids=[8], insert_rows=[replacement])
        result = engine.apply_update(delete_tids=[8], insert_rows=[replacement])
        assert engine.tids() == reference.tids()  # identifier 8 was reused
        assert result.violations == expected.violations
        assert 8 in result.violations.mv_tids  # distinct ACs: everyone violates
        reference.close()
        engine.close()
