"""Baseline files: the escape hatch for pre-existing findings.

A baseline is a JSON list of ``(code, path, message)`` entries; findings
matching an entry are reported as baselined and do not fail the run.
The shipped baseline (``.reprolint-baseline.json`` at the repo root) is
*empty by policy* — the tree lints clean — but the mechanism exists so a
future rule can land strict while its fixes are staged across PRs.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.exceptions import ReproError
from repro.lint.model import Violation

__all__ = ["BaselineError", "DEFAULT_BASELINE_NAME", "load_baseline", "write_baseline"]

DEFAULT_BASELINE_NAME = ".reprolint-baseline.json"


class BaselineError(ReproError):
    """A baseline file that cannot be parsed or has the wrong shape."""


def load_baseline(path: Path) -> set[tuple[str, str, str]]:
    """The ``(code, path, message)`` triples of a baseline file."""
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise BaselineError(f"cannot read baseline {path}: {exc}") from exc
    if not isinstance(payload, dict) or not isinstance(payload.get("entries"), list):
        raise BaselineError(
            f"baseline {path} must be an object with an 'entries' list"
        )
    entries: set[tuple[str, str, str]] = set()
    for index, entry in enumerate(payload["entries"]):
        if (
            not isinstance(entry, dict)
            or not isinstance(entry.get("code"), str)
            or not isinstance(entry.get("path"), str)
            or not isinstance(entry.get("message"), str)
        ):
            raise BaselineError(
                f"baseline {path} entries[{index}] must have string "
                "'code', 'path', and 'message'"
            )
        entries.add((entry["code"], entry["path"], entry["message"]))
    return entries


def write_baseline(path: Path, violations: list[Violation]) -> None:
    entries = [
        {"code": v.code, "path": v.path, "message": v.message}
        for v in sorted(violations, key=Violation.sort_key)
    ]
    payload = {"version": 1, "entries": entries}
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
