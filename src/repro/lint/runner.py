"""The lint runner: collect files, build the index, run every checker.

Suppression and baseline filtering happen here, uniformly: a violation
is dropped if its line carries ``# reprolint: disable=<its code>`` in
the file it points at, and moved to ``baselined`` if its
``(code, path, message)`` triple appears in the loaded baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.lint.checks import FILE_CHECKS, PROJECT_CHECKS
from repro.lint.model import SourceFile, Violation
from repro.lint.project import build_index

__all__ = ["LintResult", "collect_files", "run_lint"]

_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", "artifacts"}


@dataclass
class LintResult:
    violations: list[Violation] = field(default_factory=list)
    baselined: list[Violation] = field(default_factory=list)
    #: ``(path, message)`` for files that failed to parse or decode.
    errors: list[tuple[str, str]] = field(default_factory=list)
    files_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations and not self.errors


def collect_files(paths: list[Path], root: Path) -> tuple[list[SourceFile], list[tuple[str, str]]]:
    """Parse every ``.py`` file under ``paths`` (files or directories)."""
    candidates: list[Path] = []
    for path in paths:
        if path.is_dir():
            candidates.extend(
                p
                for p in sorted(path.rglob("*.py"))
                if not _SKIP_DIRS.intersection(p.parts)
            )
        elif path.suffix == ".py":
            candidates.append(path)
    files: list[SourceFile] = []
    errors: list[tuple[str, str]] = []
    seen: set[Path] = set()
    for candidate in candidates:
        resolved = candidate.resolve()
        if resolved in seen:
            continue
        seen.add(resolved)
        try:
            files.append(SourceFile.parse(candidate, root))
        except (SyntaxError, UnicodeDecodeError, OSError) as exc:
            rel = candidate.as_posix()
            errors.append((rel, f"cannot parse: {exc}"))
    return files, errors


def run_lint(
    paths: list[Path],
    root: Path,
    baseline: set[tuple[str, str, str]] | None = None,
) -> LintResult:
    files, errors = collect_files(paths, root)
    result = LintResult(errors=errors, files_checked=len(files))
    index = build_index(files)
    by_rel = {file.rel: file for file in files}

    raw: list[Violation] = []
    for file in files:
        for _code, check in FILE_CHECKS:
            raw.extend(check(file, index))
    for _code, check in PROJECT_CHECKS:
        raw.extend(check(index))

    baseline = baseline or set()
    for violation in sorted(set(raw), key=Violation.sort_key):
        owner = by_rel.get(violation.path)
        if owner is not None and owner.suppressed(violation.code, violation.line):
            continue
        if violation.baseline_key() in baseline:
            result.baselined.append(violation)
        else:
            result.violations.append(violation)
    return result
