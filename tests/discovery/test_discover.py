"""Unit tests for eCFD discovery (repro.discovery)."""

import pytest

from repro.core import Relation, cust_schema
from repro.datagen import DatasetGenerator, find_city
from repro.detection import NaiveDetector
from repro.discovery import discover_ecfd, discover_patterns
from repro.exceptions import DiscoveryError


def city_rows(pairs):
    """Build cust rows with the given (CT, AC) pairs and filler attributes."""
    return [
        {"AC": ac, "PN": str(i), "NM": "x", "STR": "s", "CT": ct, "ZIP": str(i)}
        for i, (ct, ac) in enumerate(pairs, start=1)
    ]


class TestDiscoverPatterns:
    def test_mines_constant_binding(self, schema):
        relation = Relation(schema, city_rows([("Albany", "518")] * 5 + [("Troy", "518")] * 4))
        patterns = discover_patterns(relation, ["CT"], "AC", min_support=3)
        assert {p.lhs_value for p in patterns} == {"Albany", "Troy"}
        assert all(p.rhs_values == frozenset({"518"}) and not p.complement for p in patterns)
        assert all(p.confidence == 1.0 for p in patterns)

    def test_mines_disjunction_for_multivalued_rhs(self, schema):
        pairs = [("NYC", "212")] * 4 + [("NYC", "718")] * 4 + [("NYC", "646")] * 2
        relation = Relation(schema, city_rows(pairs))
        patterns = discover_patterns(relation, ["CT"], "AC", min_support=3, min_confidence=1.0)
        assert len(patterns) == 1
        assert patterns[0].rhs_values == frozenset({"212", "718", "646"})

    def test_low_support_groups_skipped(self, schema):
        relation = Relation(schema, city_rows([("Albany", "518"), ("Troy", "518")]))
        assert discover_patterns(relation, ["CT"], "AC", min_support=3) == []

    def test_noise_tolerated_below_confidence_threshold(self, schema):
        pairs = [("Albany", "518")] * 19 + [("Albany", "999")]
        relation = Relation(schema, city_rows(pairs))
        patterns = discover_patterns(relation, ["CT"], "AC", min_support=5, min_confidence=0.9)
        assert len(patterns) == 1
        assert patterns[0].rhs_values == frozenset({"518"})
        assert patterns[0].confidence == pytest.approx(0.95)

    def test_spread_out_rhs_produces_nothing(self, schema):
        pairs = [("NYC", str(code)) for code in range(20)]
        relation = Relation(schema, city_rows(pairs))
        assert discover_patterns(relation, ["CT"], "AC", min_support=5, max_rhs_values=3) == []

    def test_invalid_parameters_rejected(self, schema, d0):
        with pytest.raises(DiscoveryError):
            discover_patterns(d0, [], "AC")
        with pytest.raises(DiscoveryError):
            discover_patterns(d0, ["AC"], "AC")
        with pytest.raises(DiscoveryError):
            discover_patterns(d0, ["CT"], "AC", min_confidence=0.0)


class TestDiscoverEcfd:
    def test_discovered_ecfd_holds_on_clean_sample(self):
        generator = DatasetGenerator(seed=11)
        relation = generator.generate(400, noise_percent=0.0)
        result = discover_ecfd(relation, ["CT"], "AC", min_support=3, min_confidence=1.0)
        assert result.ecfd is not None
        assert result.ecfd.pattern_rhs == ("AC",)
        assert NaiveDetector([result.ecfd]).detect(relation).is_clean()

    def test_discovered_ecfd_reflects_catalogue_bindings(self):
        generator = DatasetGenerator(seed=12)
        relation = generator.generate(500, noise_percent=0.0)
        result = discover_ecfd(relation, ["CT"], "AC", min_support=4, min_confidence=1.0)
        assert result.ecfd is not None
        for pattern, mined in zip(result.ecfd.tableau, result.patterns):
            record = find_city(str(mined.lhs_value))
            if record is not None and not mined.complement:
                assert mined.rhs_values <= set(record.area_codes)

    def test_discovered_ecfd_flags_injected_noise(self):
        generator = DatasetGenerator(seed=13)
        clean = generator.generate(400, noise_percent=0.0)
        result = discover_ecfd(clean, ["CT"], "AC", min_support=3, min_confidence=1.0)
        assert result.ecfd is not None
        # Corrupt a fresh dataset and check the discovered constraint catches it.
        dirty = DatasetGenerator(seed=13).generate(400, noise_percent=0.0)
        victim = dirty.get(1)
        dirty._tuples[1] = victim.replace(AC="000")
        violations = NaiveDetector([result.ecfd]).detect(dirty)
        assert 1 in violations.sv_tids

    def test_empty_result_when_nothing_reaches_thresholds(self, schema):
        relation = Relation(schema, city_rows([("Albany", "518")]))
        result = discover_ecfd(relation, ["CT"], "AC", min_support=5)
        assert result.ecfd is None
        assert result.patterns == ()

    def test_multi_attribute_lhs(self, schema):
        rows = city_rows([("Albany", "518")] * 4 + [("Troy", "518")] * 4)
        for index, row in enumerate(rows):
            row["ZIP"] = "12205" if index < 4 else "12180"
        relation = Relation(schema, rows)
        result = discover_ecfd(relation, ["CT", "ZIP"], "AC", min_support=3, min_confidence=1.0)
        assert result.ecfd is not None
        assert result.ecfd.lhs == ("CT", "ZIP")
