"""Unit tests for the Section IV reduction and the MAXSS approximation."""

import pytest

from repro.analysis import (
    is_satisfiable,
    max_satisfiable_subset,
    reduce_to_maxgsat,
    variable_name,
)
from repro.core import ECFD, ECFDSet
from repro.core.patterns import ComplementSet, ValueSet
from repro.exceptions import ConstraintError
from repro.sat import SOLVERS, solve_exact


def contradiction(schema):
    """An unsatisfiable single eCFD (Example 3.1): CT must be NYC and then LI."""
    return ECFD(
        schema,
        ["CT"],
        ["CT"],
        tableau=[
            ({"CT": {"NYC"}}, {"CT": {"LI"}}),
            ({"CT": "_"}, {"CT": {"NYC"}}),
        ],
        name="phi3",
    )


def force_nyc(schema):
    """Force CT to be NYC for every tuple."""
    return ECFD(schema, ["AC"], [], ["CT"], tableau=[({"AC": "_"}, {"CT": {"NYC"}})])


class TestReduction:
    def test_one_formula_per_ecfd(self, paper_sigma):
        reduction = reduce_to_maxgsat(paper_sigma)
        assert reduction.instance.size == len(paper_sigma)
        assert reduction.constraints == tuple(paper_sigma)

    def test_variables_cover_active_domains(self, paper_sigma):
        reduction = reduce_to_maxgsat(paper_sigma)
        names = set()
        for expression in reduction.instance.expressions:
            names |= expression.variables()
        assert variable_name("CT", "NYC") in names
        assert variable_name("AC", "518") in names
        # Only mentioned attributes get variables.
        assert not any("ZIP" in name for name in names)

    def test_empty_sigma_rejected(self):
        with pytest.raises(ConstraintError):
            reduce_to_maxgsat([])

    def test_optimum_equals_maxss_on_satisfiable_set(self, paper_sigma):
        """Property (2): the MAXGSAT optimum equals the MAXSS optimum (here |Σ|)."""
        reduction = reduce_to_maxgsat(paper_sigma)
        result = solve_exact(reduction.instance)
        assert result.score == len(paper_sigma)

    def test_optimum_on_unsatisfiable_set(self, schema, psi1, psi2):
        """Σ = {ψ1, ψ2, φ3, force_nyc}: φ3 ∧ force_nyc is contradictory, so the
        optimum satisfiable subset has 3 members."""
        sigma = [psi1, psi2, contradiction(schema), force_nyc(schema)]
        reduction = reduce_to_maxgsat(sigma)
        result = solve_exact(reduction.instance)
        assert result.score == 3

    def test_decode_tuple_respects_assignment(self, paper_sigma):
        reduction = reduce_to_maxgsat(paper_sigma)
        result = solve_exact(reduction.instance)
        witness = reduction.decode_tuple(result.assignment)
        # The decoded tuple covers the whole schema and satisfies the decoded subset.
        assert set(witness) == set(paper_sigma.schema.attribute_names)
        satisfied = reduction.decode_satisfied(result.assignment)
        for index in satisfied:
            assert reduction.constraints[index].satisfied_by_single_tuple(witness)

    def test_g_cardinality_property(self, schema, psi1, psi2):
        """Property (3): card(g(Φ_m)) ≥ card(Φ_m) for any assignment."""
        sigma = [psi1, psi2, contradiction(schema)]
        reduction = reduce_to_maxgsat(sigma)
        assignments = [
            {},
            {variable_name("CT", "NYC"): True},
            {variable_name("CT", "Albany"): True, variable_name("AC", "518"): True},
        ]
        for assignment in assignments:
            satisfied_formulas = reduction.instance.satisfied_indices(assignment)
            decoded = reduction.decode_satisfied(assignment)
            assert len(decoded) >= len(satisfied_formulas)

    def test_mixed_schema_rejected(self, psi1):
        from repro.core.schema import RelationSchema

        other_schema = RelationSchema("other", ["A", "B"])
        other = ECFD(other_schema, ["A"], ["B"], tableau=[({"A": "_"}, {"B": "_"})])
        with pytest.raises(ConstraintError):
            reduce_to_maxgsat([psi1, other])


class TestMaxSS:
    def test_satisfiable_set_returns_everything(self, paper_sigma):
        result = max_satisfiable_subset(paper_sigma)
        assert result.cardinality == len(paper_sigma)
        assert result.verdict() == "satisfiable"
        assert paper_sigma.satisfied_by_single_tuple(result.witness)

    def test_unsatisfiable_pair_drops_one(self, schema, psi1, psi2):
        sigma = [psi1, psi2, contradiction(schema), force_nyc(schema)]
        result = max_satisfiable_subset(sigma)
        # The optimum is 3 (drop either φ3 or force_nyc); the portfolio solver
        # finds it on an instance this small.
        assert result.cardinality == 3
        assert result.verdict() in {"unknown", "unsatisfiable"}
        subset = ECFDSet(result.satisfiable_subset)
        assert subset.satisfied_by_single_tuple(result.witness)
        assert is_satisfiable(subset)

    def test_returned_subset_always_satisfiable(self, schema, psi1, psi2):
        """Regardless of solver quality, g() must return a satisfiable subset."""
        sigma = [psi1, psi2, contradiction(schema), force_nyc(schema)]
        for name, solver in SOLVERS.items():
            result = max_satisfiable_subset(sigma, solver=solver)
            assert is_satisfiable(result.satisfiable_subset), name
            assert result.cardinality >= result.maxgsat_score, name

    def test_verdict_epsilon(self, schema, psi1, psi2):
        sigma = [psi1, psi2, contradiction(schema), force_nyc(schema)]
        result = max_satisfiable_subset(sigma)
        # With a huge epsilon the shortfall is within tolerance: unknown.
        assert result.verdict(epsilon=0.9) == "unknown"
        # With epsilon = 0 a strict shortfall certifies unsatisfiability.
        assert result.verdict(epsilon=0.0) == "unsatisfiable"

    def test_single_unsatisfiable_constraint(self, schema):
        result = max_satisfiable_subset([contradiction(schema)])
        assert result.cardinality == 0
        assert result.satisfiable_subset == []
