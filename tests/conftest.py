"""Shared pytest fixtures: the paper's running example (Fig. 1 and Fig. 2).

The instance ``D0`` of the ``cust`` relation (Fig. 1) and the two example
eCFDs ψ1 / ψ2 (Fig. 2) are used across the unit, integration and
property-based test suites, so they are defined once here.
"""

from __future__ import annotations

import pytest

from repro.core import (
    ECFD,
    ECFDSet,
    PatternTuple,
    Relation,
    cust_schema,
)
from repro.core.patterns import ComplementSet, ValueSet, Wildcard


@pytest.fixture
def schema():
    """The cust(AC, PN, NM, STR, CT, ZIP) schema of Fig. 1."""
    return cust_schema()


#: The six tuples of Fig. 1, keyed t1..t6 in the paper.
FIG1_ROWS = [
    {"AC": "718", "PN": "1111111", "NM": "Mike", "STR": "Tree Ave.", "CT": "Albany", "ZIP": "12238"},
    {"AC": "518", "PN": "2222222", "NM": "Joe", "STR": "Elm Str.", "CT": "Colonie", "ZIP": "12205"},
    {"AC": "518", "PN": "2222222", "NM": "Jim", "STR": "Oak Ave.", "CT": "Troy", "ZIP": "12181"},
    {"AC": "100", "PN": "1111111", "NM": "Rick", "STR": "8th Ave.", "CT": "NYC", "ZIP": "10001"},
    {"AC": "212", "PN": "3333333", "NM": "Ben", "STR": "5th Ave.", "CT": "NYC", "ZIP": "10016"},
    {"AC": "646", "PN": "4444444", "NM": "Ian", "STR": "High St.", "CT": "NYC", "ZIP": "10011"},
]


@pytest.fixture
def d0(schema):
    """The instance D0 of Fig. 1 (tids 1..6 correspond to t1..t6)."""
    return Relation(schema, FIG1_ROWS)


def make_psi1(schema) -> ECFD:
    """eCFD ψ1 of Fig. 2: (cust: [CT] -> [AC], ∅, T1).

    T1 has two pattern tuples:
      ({NYC, LI}̄ , _)              — the FD CT -> AC holds outside NYC/LI;
      ({Albany, Troy, Colonie}, {518}) — those cities must have area code 518.
    """
    return ECFD(
        schema,
        lhs=["CT"],
        rhs=["AC"],
        pattern_rhs=[],
        tableau=[
            PatternTuple({"CT": ComplementSet(["NYC", "LI"])}, {"AC": Wildcard()}),
            PatternTuple(
                {"CT": ValueSet(["Albany", "Troy", "Colonie"])},
                {"AC": ValueSet(["518"])},
            ),
        ],
        name="psi1",
    )


def make_psi2(schema) -> ECFD:
    """eCFD ψ2 of Fig. 2: (cust: [CT] -> ∅, {AC}, T2).

    T2 has a single pattern tuple binding NYC to the five NYC area codes.
    """
    return ECFD(
        schema,
        lhs=["CT"],
        rhs=[],
        pattern_rhs=["AC"],
        tableau=[
            PatternTuple(
                {"CT": ValueSet(["NYC"])},
                {"AC": ValueSet(["212", "718", "646", "347", "917"])},
            ),
        ],
        name="psi2",
    )


@pytest.fixture
def psi1(schema):
    return make_psi1(schema)


@pytest.fixture
def psi2(schema):
    return make_psi2(schema)


@pytest.fixture
def paper_sigma(schema):
    """The set Σ = {ψ1, ψ2} of Fig. 2."""
    return ECFDSet([make_psi1(schema), make_psi2(schema)])
