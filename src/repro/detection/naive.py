"""A pure-Python reference detector (the oracle for the SQL detectors).

The SQL-based algorithms of Section V are the paper's contribution; to trust
a reproduction of them one needs an independent implementation of the
violation semantics of Section II to compare against.  :class:`NaiveDetector`
is that oracle: it evaluates every (normalized) eCFD directly over an
in-memory relation using the reference semantics implemented in
:meth:`repro.core.ecfd.ECFD.violations` — one pass per pattern tuple, no SQL,
no encoding.

Besides serving as the correctness baseline in the integration and
property-based tests, the naive detector is also the "direct extension"
strawman that the ablation benchmark compares the encoded SQL approach
against: its cost grows with the number of pattern tuples in Σ because each
pattern is evaluated by a separate scan, whereas BATCHDETECT issues a fixed
number of queries regardless of |Σ|.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.ecfd import ECFD, ECFDSet
from repro.core.instance import Relation
from repro.core.violations import ViolationSet
from repro.detection.database import ECFDDatabase

__all__ = ["NaiveDetector"]


class NaiveDetector:
    """Reference (non-SQL) detector for eCFD violations.

    Parameters
    ----------
    sigma:
        The constraints to check.
    """

    def __init__(self, sigma: ECFDSet | Sequence[ECFD]):
        self.sigma = sigma if isinstance(sigma, ECFDSet) else ECFDSet(list(sigma))

    def detect(self, relation: Relation) -> ViolationSet:
        """All violations of Σ in the in-memory relation."""
        return self.sigma.violations(relation)

    def detect_database(self, database: ECFDDatabase) -> ViolationSet:
        """All violations of Σ in a SQLite-backed table.

        The table is materialised back into an in-memory relation (tuple
        identifiers preserved) and checked with the reference semantics, so
        the result is directly comparable with
        :meth:`repro.detection.batch.BatchDetector.detect`.
        """
        return self.detect(database.to_relation())
