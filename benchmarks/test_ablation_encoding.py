"""Ablation: encoded SQL detection vs. naive per-pattern Python detection.

The paper's remark in Section V-A argues that encoding the pattern tableaux
as data (rather than expanding them into query text or evaluating them one
by one) keeps the number of database passes fixed and the space linear in
|Σ|.  This ablation pits BATCHDETECT against the reference pure-Python
detector, whose cost grows with the number of pattern tuples because every
pattern triggers its own scan.  Expected shape: the naive detector degrades
much faster as |Tp| grows.
"""

import pytest

from conftest import BENCH_SIZE, batch_engine, dataset_rows, prepared_engine, sweep, workload_with_tableau

TABLEAU_SIZES = sweep([50, 200, 500])
SIZE = max(BENCH_SIZE // 4, 250)


@pytest.mark.parametrize("tableau_size", TABLEAU_SIZES)
def test_ablation_sql_batchdetect(benchmark, tableau_size):
    rows = dataset_rows(SIZE)
    sigma = workload_with_tableau(tableau_size)

    def setup():
        return (batch_engine(rows, sigma),), {}

    def run(engine):
        return engine.detect()

    result = benchmark.pedantic(run, setup=setup, rounds=1, iterations=1)
    benchmark.extra_info["tableau_size"] = tableau_size
    benchmark.extra_info["dirty"] = result.dirty_count


@pytest.mark.parametrize("tableau_size", TABLEAU_SIZES)
def test_ablation_naive_python_detector(benchmark, tableau_size):
    rows = dataset_rows(SIZE)
    sigma = workload_with_tableau(tableau_size)
    engine = prepared_engine(rows, "naive", sigma)

    result = benchmark.pedantic(engine.detect, rounds=1, iterations=1)
    benchmark.extra_info["tableau_size"] = tableau_size
    benchmark.extra_info["dirty"] = result.dirty_count
