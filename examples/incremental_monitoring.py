"""Incremental violation monitoring of a live table (Section V-B in action).

A customer table receives batches of insertions and deletions; INCDETECT
maintains the violation set across the updates without re-scanning the whole
database.  After each batch the script reports the violation counts and, at
the end, cross-checks the maintained state against a from-scratch
BATCHDETECT run.

Run with::

    python examples/incremental_monitoring.py
"""

import time

from repro.core import cust_ext_schema
from repro.datagen import DatasetGenerator, UpdateGenerator, paper_workload
from repro.detection import BatchDetector, ECFDDatabase, IncrementalDetector


def main() -> None:
    schema = cust_ext_schema()
    sigma = paper_workload(schema)
    generator = DatasetGenerator(seed=7)
    rows = generator.generate_rows(5_000, noise_percent=5.0)

    database = ECFDDatabase(schema)
    database.insert_tuples(rows)
    monitor = IncrementalDetector(database, sigma)

    started = time.perf_counter()
    initial = monitor.initialize()
    print(f"Initial batch run over {database.count()} tuples "
          f"({time.perf_counter() - started:.2f}s): {len(initial)} dirty tuples")

    updates = UpdateGenerator(DatasetGenerator(seed=8), seed=9)
    for round_number in range(1, 6):
        batch = updates.make_batch(
            existing_tids=database.all_tids(),
            insert_count=250,
            delete_count=250,
            noise_percent=5.0,
        )
        started = time.perf_counter()
        monitor.delete_tuples(batch.delete_tids)
        current = monitor.insert_tuples(list(batch.insert_rows))
        elapsed = time.perf_counter() - started
        counts = database.flag_counts()
        print(f"update {round_number}: -{batch.delete_count}/+{batch.insert_count} tuples "
              f"in {elapsed:.3f}s -> SV={counts['sv']} MV={counts['mv']} dirty={counts['dirty']}")

    # Cross-check: rebuild the final state from scratch.
    final_relation = database.to_relation()
    with ECFDDatabase(schema) as reference:
        reference.load_relation(final_relation)
        started = time.perf_counter()
        recomputed = BatchDetector(reference, sigma).detect()
        batch_time = time.perf_counter() - started
    print(f"\nFrom-scratch BATCHDETECT on the final table: {batch_time:.3f}s")
    print(f"Incremental state matches the recomputation: {current == recomputed}")
    database.close()


if __name__ == "__main__":
    main()
