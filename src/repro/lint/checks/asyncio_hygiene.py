"""RPL004 — asyncio hygiene in the fabric's event-loop code.

Inside the *direct* body of an ``async def`` (nested sync functions run
elsewhere — typically on an executor thread — and are exempt):

* no blocking calls: ``time.sleep``, subprocess spawns, ``os.system``,
  builtin ``open``, ``socket.create_connection`` — one of these stalls
  every lane the loop serves;
* no bare-statement calls of module- or class-local coroutines (an
  un-awaited coroutine silently never runs);
* no fire-and-forget ``create_task``/``ensure_future`` — an unretained
  task can be garbage-collected mid-flight and its exception is lost.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.lint.astutil import body_nodes, call_name, parent_map
from repro.lint.model import SourceFile, Violation
from repro.lint.project import ProjectIndex

CODE = "RPL004"

_BLOCKING = {
    "time.sleep",
    "os.system",
    "os.popen",
    "socket.create_connection",
    "subprocess.run",
    "subprocess.call",
    "subprocess.check_call",
    "subprocess.check_output",
    "subprocess.Popen",
    "open",
}

_SPAWNERS = {"create_task", "ensure_future"}


def _local_coroutines(file: SourceFile) -> tuple[set[str], dict[str, set[str]]]:
    """Module-level async def names, and class name -> async method names."""
    module_level = {
        node.name
        for node in file.tree.body
        if isinstance(node, ast.AsyncFunctionDef)
    }
    per_class: dict[str, set[str]] = {}
    for node in ast.walk(file.tree):
        if isinstance(node, ast.ClassDef):
            per_class[node.name] = {
                stmt.name
                for stmt in node.body
                if isinstance(stmt, ast.AsyncFunctionDef)
            }
    return module_level, per_class


def check_file(file: SourceFile, index: ProjectIndex) -> Iterator[Violation]:
    module_coros, class_coros = _local_coroutines(file)
    parents = parent_map(file.tree)
    for func in ast.walk(file.tree):
        if not isinstance(func, ast.AsyncFunctionDef):
            continue
        cls = parents.get(func)
        own_class_coros = (
            class_coros.get(cls.name, set()) if isinstance(cls, ast.ClassDef) else set()
        )
        for node in body_nodes(func):
            if isinstance(node, ast.Call):
                target = call_name(node)
                if target in _BLOCKING:
                    yield Violation(
                        CODE,
                        file.rel,
                        node.lineno,
                        node.col_offset,
                        f"blocking call {target}() inside async def "
                        f"{func.name!r} — it stalls the whole event loop; "
                        "use the asyncio equivalent or run_in_executor",
                    )
            if not isinstance(node, ast.Expr) or not isinstance(node.value, ast.Call):
                continue
            call = node.value
            func_node = call.func
            if (
                isinstance(func_node, ast.Attribute)
                and func_node.attr in _SPAWNERS
            ):
                yield Violation(
                    CODE,
                    file.rel,
                    call.lineno,
                    call.col_offset,
                    f"fire-and-forget {func_node.attr}() — retain the task "
                    "(and await or cancel it) so its exception cannot vanish",
                )
            elif isinstance(func_node, ast.Name) and func_node.id in module_coros:
                yield Violation(
                    CODE,
                    file.rel,
                    call.lineno,
                    call.col_offset,
                    f"coroutine {func_node.id}(...) is never awaited — "
                    "it will not run",
                )
            elif (
                isinstance(func_node, ast.Attribute)
                and isinstance(func_node.value, ast.Name)
                and func_node.value.id == "self"
                and func_node.attr in own_class_coros
            ):
                yield Violation(
                    CODE,
                    file.rel,
                    call.lineno,
                    call.col_offset,
                    f"coroutine self.{func_node.attr}(...) is never awaited "
                    "— it will not run",
                )
