"""Sharded repair: routed fix deltas plus summary-elected group fixes.

The ``"sharded"`` repair strategy runs the violation-driven repair loop of
:class:`~repro.repair.strategies.IncrementalRepairStrategy` over a
:class:`~repro.parallel.ShardedBackend`, reusing the two sharding layers the
detection path already built instead of bypassing them:

* **fix application is routed**: each round's cell-change batch ships as a
  delete+reinsert delta under pinned tuple identifiers through
  ``ShardedBackend.incremental_update`` — the single-pass partition plan
  hashes every fixed tuple to the one shard that owns it, that shard's
  stateful INCDETECT lane maintains its flags and emits the slice's summary
  delta, and untouched shards do no work at all.  Re-validation cost per
  round is proportional to the routed fixes, never |D|, and the per-shard
  INCDETECT states stay live across the whole repair;
* **cross-shard group fixes are summary-elected**: an embedded-FD fragment
  whose ``X``-groups straddle shards (a *summary fragment* of the partition
  plan) is repaired by electing the majority RHS **directly from the
  coordinator's merged ``(cid, xv) → yv-multiset`` state**
  (:meth:`~repro.parallel.summary.SummaryStore.group_counts`) — the same
  sufficient statistics that detect the violation also decide its fix, so
  no shard ever replicates rows to the coordinator for the vote.  The
  elected values then travel back to the owning shards inside the routed
  delta;
* **rounds are batched into one routed delta**: when Python and SQL pattern
  matching provably coincide for Σ (:func:`~repro.repair.validate.text_safe_patterns`
  — every pattern constant a string, values stored as text), the strategy
  plans *all* its rounds locally against the coordinator's mirror, using a
  :class:`~repro.repair.validate.MirrorValidator` to maintain the exact
  flags between rounds, and ships the accumulated fixes as a **single**
  delete+reinsert delta.  A k-round repair then costs one lane round-trip
  instead of k; the trace reports ``lane_round_trips`` and
  ``round_trips_saved``.  Round 1 still elects cross-shard groups from the
  merged summary store (it describes exactly the start state); later rounds
  elect from the mirror's own rows, which the shared planner guarantees
  gives bit-identical elections for the same state.  When the semantics
  gate fails — or ``batch_rounds=False`` — the strategy falls back to
  shipping every round, the pre-batching behaviour.

Because the summary store is only advanced by shipped deltas, its multisets
describe exactly the start-of-round state the shared
:class:`~repro.repair.fixes.FixPlanner` plans multi-tuple fixes against —
summary-elected and row-counted elections agree bit-for-bit, which is what
makes sharded repair produce the identical clean relation (and identical
cell-change audit) as the single-threaded greedy baseline, batched or not.

The strategy registers itself as ``"sharded"`` in the repair-strategy
registry; :meth:`repro.engine.DataQualityEngine.repair` selects it
automatically for sharded engines with an incremental-capable delegate.
"""

from __future__ import annotations

from repro.exceptions import EngineError, RepairError
from repro.parallel.sharded import ShardedBackend
from repro.repair.cost import CellChange
from repro.repair.fixes import GroupCountsHook
from repro.repair.repairer import RepairOutcome
from repro.repair.strategies import IncrementalRepairStrategy, register_strategy
from repro.repair.validate import MirrorValidator, text_safe_patterns

__all__ = ["ShardedRepairStrategy"]


class ShardedRepairStrategy(IncrementalRepairStrategy):
    """Routed, summary-elected repair over the sharded detection backend.

    ``batch_rounds`` (default ``True``) enables planning several repair
    rounds locally and shipping them as one routed delta; it only engages
    when local re-validation is provably exact for Σ (see the module
    docstring), falling back to per-round shipping otherwise.
    """

    name = "sharded"

    def __init__(self, sigma, cost_model=None, max_rounds: int = 10, batch_rounds: bool = True):
        super().__init__(sigma, cost_model=cost_model, max_rounds=max_rounds)
        self.batch_rounds = batch_rounds

    def repair(self, backend) -> RepairOutcome:
        if not isinstance(backend, ShardedBackend):
            raise EngineError(
                f"the 'sharded' repair strategy runs over the sharded detection "
                f"backend; got backend {backend.name!r} (construct the engine "
                "with workers > 1 over an incremental delegate, or use "
                "strategy='incremental')"
            )
        if not self.batch_rounds or not text_safe_patterns(self.sigma):
            return super().repair(backend)
        return self._repair_batched(backend)

    def _repair_batched(self, backend: ShardedBackend) -> RepairOutcome:
        """Plan every round locally, ship the accumulated fixes once."""
        self._check_satisfiable()
        backend.ensure_ready()
        violations = backend.detect()
        baseline_full_detects = backend.full_detect_count

        mirror = backend.to_relation()
        # Snapshots the start state; maintains the exact flags of the
        # mirror as the planner writes each round's fixes into it.
        validator = MirrorValidator(self.sigma, mirror)
        group_counts = self._group_counts_hook(backend)

        changes: list[CellChange] = []
        rounds_trace: list[dict] = []
        planned_rounds = 0
        rows_avoided = 0
        summary_groups = 0
        converged_rounds: int | None = None
        for round_number in range(1, self.max_rounds + 1):
            if violations.is_clean():
                converged_rounds = round_number - 1
                break
            dirty_before = len(violations)
            # Only round 1 may elect from the summary store — it describes
            # the last *shipped* state, which later (unshipped) rounds have
            # already moved past.  Row-counted elections over the mirror are
            # bit-identical for the same state, so nothing diverges.
            hook = group_counts if planned_rounds == 0 else None
            plan = self.planner.plan_round(mirror, violations, group_counts=hook)
            if not plan.changes:
                raise RepairError(
                    f"sharded repair stalled in round {round_number}: no fix "
                    f"applies to the {dirty_before} remaining dirty tuples"
                )
            planned_rounds += 1
            rows_avoided += backend.count()
            summary_groups += plan.summary_groups
            changes.extend(plan.changes)
            rounds_trace.append(
                {
                    "round": round_number,
                    "dirty": dirty_before,
                    "mv_fixes": plan.mv_fixes,
                    "sv_fixes": plan.sv_fixes,
                    "changes": len(plan.changes),
                    "summary_groups": plan.summary_groups,
                }
            )
            violations = validator.apply_changes(plan.changes)
        else:
            if violations.is_clean():
                converged_rounds = self.max_rounds
        if converged_rounds is None:
            raise RepairError(
                f"sharded repair did not converge within {self.max_rounds} "
                f"rounds; {len(violations)} tuples remain dirty"
            )

        # One routed delta carries every round's fixes: delete + reinsert
        # the changed tuples (final mirror values) under pinned tids.
        lane_round_trips = 0
        if changes:
            tids = sorted({change.tid for change in changes})
            rows = []
            for tid in tids:
                t = mirror.get(tid)
                assert t is not None  # the planner only rewrites stored tuples
                rows.append(t.as_dict())
            shipped = backend.incremental_update(tids, rows, insert_tids=tids)
            lane_round_trips = 1
            if not shipped.is_clean():
                # The semantics gate should make this unreachable; a dirty
                # readback means local re-validation diverged from the
                # delegate, and silently returning would break the clean
                # guarantee every strategy carries.
                raise RepairError(
                    "batched sharded repair diverged from the backend: "
                    f"{len(shipped)} tuples still dirty after shipping "
                    f"{planned_rounds} locally validated rounds"
                )

        return RepairOutcome(
            mirror,
            changes,
            self.cost_model.cost(changes),
            rounds=converged_rounds,
            trace={
                "strategy": self.name,
                "full_detects": backend.full_detect_count - baseline_full_detects,
                "maintained_rounds": planned_rounds,
                "redetect_rows_avoided": rows_avoided,
                "summary_groups_repaired": summary_groups,
                "lane_round_trips": lane_round_trips,
                "round_trips_saved": planned_rounds - lane_round_trips,
                "rounds": rounds_trace,
            },
        )

    def _group_counts_hook(self, backend) -> GroupCountsHook | None:
        """Elect summary-fragment group fixes from the merged summary store.

        Local fragments (LHS ⊇ partition key: their groups are complete on
        one shard, and their flags fold into the coordinator's merged
        violation set) keep the planner's row-counted election; only the
        fragments whose evidence already lives in the store as merged
        ``yv`` multisets are elected from it.
        """
        summary_cids = backend.summary_fragment_cids()
        if not summary_cids:
            return None  # workers <= 1: one whole-Σ shard, nothing summarised
        store = backend.summary_store

        def lookup(cid: int, xv: tuple):
            if cid not in summary_cids:
                return None
            return store.group_counts(cid, xv)

        return lookup


register_strategy(ShardedRepairStrategy.name, ShardedRepairStrategy)
