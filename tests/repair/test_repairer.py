"""Unit tests for the greedy repair extension (repro.repair)."""

import pytest

from repro.core import ECFD, ECFDSet, Relation
from repro.datagen import DatasetGenerator, paper_workload
from repro.detection import NaiveDetector
from repro.repair import CellChange, GreedyRepairer, RepairCostModel
from repro.exceptions import RepairError
from tests.conftest import FIG1_ROWS


class TestCostModel:
    def test_default_cost_counts_cells(self):
        model = RepairCostModel()
        changes = [
            CellChange(1, "AC", "718", "518"),
            CellChange(4, "AC", "100", "212"),
        ]
        assert model.cost(changes) == 2.0
        assert model.cell_cost("AC") == 1.0

    def test_weighted_cost(self):
        model = RepairCostModel(attribute_weights={"AC": 3.0}, default_weight=0.5)
        changes = [CellChange(1, "AC", "718", "518"), CellChange(1, "ZIP", "1", "2")]
        assert model.cost(changes) == 3.5


class TestGreedyRepairer:
    def test_repairs_paper_example(self, schema, paper_sigma, d0):
        repairer = GreedyRepairer(paper_sigma)
        result = repairer.repair(d0)
        assert NaiveDetector(paper_sigma).detect(result.relation).is_clean()
        # Only the two dirty tuples (t1 and t4) need to change.
        assert result.changed_tids() <= {1, 4}
        assert result.change_count >= 2
        # The original relation is untouched.
        assert d0.get(1)["AC"] == "718"

    def test_repair_fixes_fd_violation_by_majority(self, schema, paper_sigma):
        rows = [
            {"AC": "518", "PN": "1", "NM": "a", "STR": "s", "CT": "Troy", "ZIP": "1"},
            {"AC": "518", "PN": "2", "NM": "b", "STR": "s", "CT": "Troy", "ZIP": "1"},
            {"AC": "999", "PN": "3", "NM": "c", "STR": "s", "CT": "Troy", "ZIP": "1"},
        ]
        relation = Relation(schema, rows)
        result = GreedyRepairer(paper_sigma).repair(relation)
        assert NaiveDetector(paper_sigma).detect(result.relation).is_clean()
        # The minority tuple is rewritten to the majority value 518.
        assert result.relation.get(3)["AC"] == "518"
        assert result.changed_tids() == {3}

    def test_clean_data_needs_no_changes(self, schema, paper_sigma):
        rows = [
            {"AC": "518", "PN": "1", "NM": "a", "STR": "s", "CT": "Albany", "ZIP": "1"},
            {"AC": "212", "PN": "2", "NM": "b", "STR": "s", "CT": "NYC", "ZIP": "2"},
        ]
        result = GreedyRepairer(paper_sigma).repair(Relation(schema, rows))
        assert result.change_count == 0
        assert result.cost == 0.0

    def test_unsatisfiable_sigma_rejected(self, schema):
        contradiction = ECFD(
            schema,
            ["CT"],
            ["CT"],
            tableau=[
                ({"CT": {"NYC"}}, {"CT": {"LI"}}),
                ({"CT": "_"}, {"CT": {"NYC"}}),
            ],
        )
        with pytest.raises(RepairError):
            GreedyRepairer([contradiction]).repair(Relation(schema, FIG1_ROWS[:2]))

    def test_repair_generated_noisy_dataset(self):
        sigma = paper_workload()
        relation = DatasetGenerator(seed=5).generate(150, noise_percent=6.0)
        assert not NaiveDetector(sigma).detect(relation).is_clean()
        result = GreedyRepairer(sigma, max_rounds=12).repair(relation)
        assert NaiveDetector(sigma).detect(result.relation).is_clean()
        assert result.change_count > 0
        # The repair touches at most a small multiple of the corrupted tuples.
        assert len(result.changed_tids()) <= 45

    def test_cost_model_is_applied(self, schema, paper_sigma, d0):
        expensive_ac = RepairCostModel(attribute_weights={"AC": 10.0})
        result = GreedyRepairer(paper_sigma, cost_model=expensive_ac).repair(d0)
        assert result.cost >= 10.0
